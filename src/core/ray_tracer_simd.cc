/// \file ray_tracer_simd.cc
/// marchPacket8: the 8-wide SIMD ray-packet march (DESIGN.md §14).
///
/// Eight rays march in lockstep through level 0's packed records. Two
/// ISA-specific kernels sit behind Tracer::traceRaysSimd:
///
///  - traceRaysAvx512 — TWO independent 8-lane packets, interleaved in
///    one loop, one lane per __m512d element, k-mask predication
///    throughout. Each packet's whole lane state (tMax/tDelta/cnt per
///    axis, offset, strides, tCur/trans/sumI, bundle index) stays in
///    registers; every commit is a single masked op, so there is no
///    hot/slow path split, and the second packet's independent
///    gather→exp→transmissivity chain fills the first's latency
///    bubbles. Preferred whenever the host has AVX-512 F/DQ/VL/BW.
///  - traceRaysAvx2 — the packet as two 4-lane __m256d halves, with a
///    register-resident unmasked hot loop that breaks (without
///    committing) on any lane event and a masked slow path that redoes
///    the event crossing and retires/refills lanes.
///
/// Both kernels do exactly the per-crossing work of the scalar packed
/// march — min-axis selection, one record load, one exp, one FMA-shaped
/// absorb/emit — with vector compares/blends (or k-masks) for the
/// min-axis selection, gathers against the PackedFieldView byte-offset
/// helpers for the record loads, and a vectorized polynomial exp
/// (exp4d / exp8d below). Lanes retire when a ray hits a wall cell,
/// extinguishes below TraceConfig::threshold, or steps out of the
/// level's `allowed` box; retired lanes refill from the pending bundle
/// through a SetupQueue that precomputes per-ray DDA setups a chunk at
/// a time (the setup's division chain would otherwise stall the packet
/// at every refill). Rays that left `allowed` finish on the coarser
/// levels through the scalar march.
///
/// Numerical contract: the DDA bookkeeping (tMax/tDelta setup, min-axis
/// tie-breaking, segment lengths, cell paths) performs the exact same
/// IEEE operations as the scalar packed march, so every ray visits the
/// bitwise-identical cell sequence with bitwise-identical segment
/// lengths. The only divergence is the polynomial exp vs libm exp
/// (≤ ~2 ulp per segment), which accumulates multiplicatively through
/// the transmissivity — hence the documented ULP tolerance on per-ray
/// intensities (DESIGN.md §14, simd_march_test) instead of bitwise
/// equality. The scalar path remains the golden reference.
///
/// This translation unit is compiled with the baseline ISA; only the
/// functions marked RMCRT_TARGET_AVX2 / RMCRT_TARGET_AVX512 carry
/// `target(...)` attributes, so the binary stays runnable on non-SIMD
/// hosts and Tracer::simdSupported() gates every call at runtime.
/// RMCRT_FORCE_AVX2=1 pins an AVX-512 host to the AVX2 kernel so the
/// fallback stays testable on modern hardware.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

#include "core/packed_field.h"
#include "core/ray_tracer.h"

#if RMCRT_SIMD_X86
#include <immintrin.h>
#endif

namespace rmcrt::core {

#if RMCRT_SIMD_X86

#define RMCRT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define RMCRT_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512dq,avx512vl,avx512bw,avx2,fma")))

namespace {

/// Infinity-safe division, identical to the scalar march's setup helper.
double safeDivSimd(double num, double den) {
  return den == 0.0 ? std::numeric_limits<double>::infinity() : num / den;
}

/// Per-ray Amanatides-Woo setup, precomputed by SetupQueue so a lane
/// refill is a handful of L1 copies instead of a chain of divisions.
struct RaySetup {
  double tMax[3];
  double tDelta[3];
  /// Steps remaining along each axis before the ray leaves `allowed`,
  /// kept as doubles (small exact integers) so the exit test is a
  /// vector compare. The scalar march's post-step bounds check
  /// `stepped < lo || stepped >= hi` is equivalent to this count going
  /// negative.
  double cnt[3];
  /// Linear record element offset of the ray's starting cell.
  std::int64_t off;
  /// Pre-signed element stride per axis (PackedFieldView::laneStride).
  std::int64_t axStride[3];
  std::int64_t initCnt[3];
  int step[3];
  int start[3];
};

/// Performs the exact FP sequence of the scalar packed march's setup, so
/// the ray's tMax/tDelta (and therefore its whole cell path) are bitwise
/// identical to the scalar reference.
void computeRaySetup(const TraceLevel& L, const Vector& origin,
                     const Vector& dir, RaySetup& rs) {
  const LevelGeom& g = L.geom;
  IntVector start = g.cellAt(origin);
  start = max(min(start, L.allowed.high() - IntVector(1)), L.allowed.low());
  for (int i = 0; i < 3; ++i) {
    const int step = dir[i] >= 0.0 ? 1 : -1;
    rs.step[i] = step;
    rs.start[i] = start[i];
    rs.tDelta[i] = safeDivSimd(g.dx[i], std::abs(dir[i]));
    const double planeCoord =
        g.physLow[i] +
        (start[i] - g.cells.low()[i] + (dir[i] >= 0.0 ? 1 : 0)) * g.dx[i];
    double tM = safeDivSimd(planeCoord - origin[i], dir[i]);
    if (tM < 0.0) tM = 0.0;  // float slop at the boundary
    rs.tMax[i] = tM;
    const std::int64_t cnt =
        step > 0
            ? static_cast<std::int64_t>(L.allowed.high()[i] - 1 - start[i])
            : static_cast<std::int64_t>(start[i] - L.allowed.low()[i]);
    rs.cnt[i] = static_cast<double>(cnt);
    rs.initCnt[i] = cnt;
    rs.axStride[i] = L.packed.laneStride(i, step);
  }
  rs.off = L.packed.offsetOf(start);
}

/// Chunked precompute of per-ray DDA setups. Lane refill happens inside
/// the packet kernels' retirement path, where computeRaySetup's
/// dependent divisions would stall the resumed march; batching the
/// setups a chunk ahead keeps the refill itself to plain copies out of
/// L1 and lets the divisions pipeline against the marching packet.
class SetupQueue {
 public:
  SetupQueue(const TraceLevel& level, const Vector* origins,
             const Vector* dirs, int n)
      : m_level(level), m_origins(origins), m_dirs(dirs), m_n(n) {}

  bool empty() const { return m_next >= m_n; }

  /// Pops the next pending ray's setup; \p rayIdx receives its bundle
  /// index. Only valid when !empty(). The reference stays valid until
  /// the next pop.
  const RaySetup& pop(int& rayIdx) {
    if (m_next >= m_base + m_filled) fill();
    rayIdx = m_next;
    return m_buf[m_next++ - m_base];
  }

 private:
  void fill() {
    m_base = m_next;
    const int remaining = m_n - m_base;
    m_filled = remaining < kChunk ? remaining : kChunk;
    for (int i = 0; i < m_filled; ++i)
      computeRaySetup(m_level, m_origins[m_base + i], m_dirs[m_base + i],
                      m_buf[i]);
  }

  static constexpr int kChunk = 128;
  const TraceLevel& m_level;
  const Vector* m_origins;
  const Vector* m_dirs;
  int m_n = 0;
  int m_next = 0;
  int m_base = 0;
  int m_filled = 0;
  RaySetup m_buf[kChunk];
};

/// SoA lane state for one 8-ray packet plus the scalar-side per-lane
/// data the (rare) retirement path needs. The AVX-512 kernel keeps the
/// vector rows in registers and uses this struct only as the spill /
/// refill staging area; the AVX2 kernel's slow path works on it
/// directly. Rows are 64-byte aligned for whole-packet __m512d loads.
struct PacketLanes {
  alignas(64) double tMax[3][8];
  alignas(64) double tDelta[3][8];
  alignas(64) double tCur[8];
  alignas(64) double trans[8];
  alignas(64) double sumI[8];
  alignas(64) double cnt[3][8];
  alignas(64) std::int64_t off[8];
  alignas(64) std::int64_t axStride[3][8];

  // Scalar-side data for lane retirement / coarse continuation.
  Vector origin[8];
  Vector dir[8];
  int rayIdx[8];
  int step[3][8];
  int start[3][8];
  std::int64_t initCnt[3][8];
};

/// Copy a precomputed setup into lane \p lane.
void fillLane(PacketLanes& P, int lane, const RaySetup& rs,
              const Vector& origin, const Vector& dir, int rayIdx) {
  for (int i = 0; i < 3; ++i) {
    P.tMax[i][lane] = rs.tMax[i];
    P.tDelta[i][lane] = rs.tDelta[i];
    P.cnt[i][lane] = rs.cnt[i];
    P.axStride[i][lane] = rs.axStride[i];
    P.initCnt[i][lane] = rs.initCnt[i];
    P.step[i][lane] = rs.step[i];
    P.start[i][lane] = rs.start[i];
  }
  P.tCur[lane] = 0.0;
  P.trans[lane] = 1.0;
  P.sumI[lane] = 0.0;
  P.off[lane] = rs.off;
  P.origin[lane] = origin;
  P.dir[lane] = dir;
  P.rayIdx[lane] = rayIdx;
}

/// The scalar-side subset of fillLane: only what the retirement /
/// coarse-continuation code reads. The AVX-512 kernel keeps the vector
/// rows in registers (merged via insertLane below), so writing them to
/// P would be dead stores.
void fillLaneMeta(PacketLanes& P, int lane, const RaySetup& rs,
                  const Vector& origin, const Vector& dir, int rayIdx) {
  for (int i = 0; i < 3; ++i) {
    P.initCnt[i][lane] = rs.initCnt[i];
    P.step[i][lane] = rs.step[i];
    P.start[i][lane] = rs.start[i];
  }
  P.origin[lane] = origin;
  P.dir[lane] = dir;
  P.rayIdx[lane] = rayIdx;
}

/// Shared constants of the vector exp kernels: round-to-nearest
/// power-of-two reduction with a two-part ln2, then a degree-13 Taylor
/// polynomial (truncation ≤ 1e-17 relative on |r| ≤ ln2/2) evaluated as
/// an Estrin tree — ~4 FMA levels of latency instead of Horner's 13, so
/// consecutive crossings' exps pipeline instead of serializing the
/// march. Accuracy ≈ 2 ulp over the march's argument range (-inf, 0].
constexpr double kExpLog2E = 1.4426950408889634074;
constexpr double kExpLn2Hi = 6.93145751953125e-1;
constexpr double kExpLn2Lo = 1.42860682030941723212e-6;
/// 1/k! for k = 0..13.
constexpr double kExpCoeff[14] = {
    1.0,
    1.0,
    5.0e-1,
    1.6666666666666665741e-1,
    4.1666666666666664354e-2,
    8.3333333333333332177e-3,
    1.3888888888888889419e-3,
    1.9841269841269841253e-4,
    2.4801587301587301566e-5,
    2.7557319223985892511e-6,
    2.7557319223985890653e-7,
    2.5052108385441718775e-8,
    2.0876756987868098979e-9,
    1.6059043836821614599e-10,
};

/// Vectorized exp for 4 doubles. Arguments below -700 flush to exactly
/// 0 (exp(-700) ≈ 1e-304 is still normal; anything a march could do
/// with ≤ 1e-304 transmissivity is identical to 0 at the 1e-4
/// extinction threshold). NaN propagates; -inf → 0 — both matching
/// libm semantics where they are observable.
RMCRT_TARGET_AVX2 inline __m256d exp4d(__m256d x) {
  // Fast path: for |x| ≤ ln2/2 the reduction is an exact identity
  // (fn = 0, r = x, scale = 2^0), so skipping it is bitwise-identical
  // to running it. March arguments are -abskg*segLen — almost always a
  // small fraction of an optical depth — so this branch predicts
  // essentially always taken.
  const __m256d ax =
      _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
  if (_mm256_movemask_pd(_mm256_cmp_pd(
          ax, _mm256_set1_pd(0.34657359027997264), _CMP_GT_OQ)) == 0) {
    const __m256d r = x;
    const __m256d r2 = _mm256_mul_pd(r, r);
    const __m256d r4 = _mm256_mul_pd(r2, r2);
    const __m256d r8 = _mm256_mul_pd(r4, r4);
    const __m256d p01 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[1]),
                                        _mm256_set1_pd(kExpCoeff[0]));
    const __m256d p23 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[3]),
                                        _mm256_set1_pd(kExpCoeff[2]));
    const __m256d p45 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[5]),
                                        _mm256_set1_pd(kExpCoeff[4]));
    const __m256d p67 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[7]),
                                        _mm256_set1_pd(kExpCoeff[6]));
    const __m256d p89 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[9]),
                                        _mm256_set1_pd(kExpCoeff[8]));
    const __m256d pAB = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[11]),
                                        _mm256_set1_pd(kExpCoeff[10]));
    const __m256d pCD = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[13]),
                                        _mm256_set1_pd(kExpCoeff[12]));
    const __m256d q0 = _mm256_fmadd_pd(r2, p23, p01);
    const __m256d q1 = _mm256_fmadd_pd(r2, p67, p45);
    const __m256d q2 = _mm256_fmadd_pd(r2, pAB, p89);
    const __m256d w0 = _mm256_fmadd_pd(r4, q1, q0);
    const __m256d w1 = _mm256_fmadd_pd(r4, pCD, q2);
    return _mm256_fmadd_pd(r8, w1, w0);
  }
  const __m256d fn = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kExpLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - fn*ln2, in two FMA steps for an exactly-representable hi
  // part.
  __m256d r = _mm256_fnmadd_pd(fn, _mm256_set1_pd(kExpLn2Hi), x);
  r = _mm256_fnmadd_pd(fn, _mm256_set1_pd(kExpLn2Lo), r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d r4 = _mm256_mul_pd(r2, r2);
  const __m256d r8 = _mm256_mul_pd(r4, r4);
  const __m256d p01 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[1]),
                                      _mm256_set1_pd(kExpCoeff[0]));
  const __m256d p23 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[3]),
                                      _mm256_set1_pd(kExpCoeff[2]));
  const __m256d p45 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[5]),
                                      _mm256_set1_pd(kExpCoeff[4]));
  const __m256d p67 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[7]),
                                      _mm256_set1_pd(kExpCoeff[6]));
  const __m256d p89 = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[9]),
                                      _mm256_set1_pd(kExpCoeff[8]));
  const __m256d pAB = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[11]),
                                      _mm256_set1_pd(kExpCoeff[10]));
  const __m256d pCD = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpCoeff[13]),
                                      _mm256_set1_pd(kExpCoeff[12]));
  const __m256d q0 = _mm256_fmadd_pd(r2, p23, p01);
  const __m256d q1 = _mm256_fmadd_pd(r2, p67, p45);
  const __m256d q2 = _mm256_fmadd_pd(r2, pAB, p89);
  const __m256d w0 = _mm256_fmadd_pd(r4, q1, q0);
  const __m256d w1 = _mm256_fmadd_pd(r4, pCD, q2);
  const __m256d p = _mm256_fmadd_pd(r8, w1, w0);
  // Scale by 2^n: build the exponent bits directly. fn is in [-1023,
  // 1024] for sane inputs, and the underflow clamp below handles the
  // subnormal range.
  const __m128i n32 = _mm256_cvtpd_epi32(fn);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  __m256d result = _mm256_mul_pd(p, _mm256_castsi256_pd(pow2));
  const __m256d tiny = _mm256_cmp_pd(x, _mm256_set1_pd(-700.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(tiny, result);
}

/// Replace lane(s) \p m of \p v with the double at \p p. The load comes
/// from the setup chunk (written long before), so it store-forwards
/// cleanly — unlike a wide masked load over freshly written scalars,
/// which stalls on forwarding at every lane refill.
RMCRT_TARGET_AVX512 inline __m512d insertLane(__m512d v, __mmask8 m,
                                              const double* p) {
  return _mm512_mask_broadcastsd_pd(v, m, _mm_load_sd(p));
}

RMCRT_TARGET_AVX512 inline __m512i insertLane64(__m512i v, __mmask8 m,
                                                const std::int64_t* p) {
  return _mm512_mask_broadcastq_epi64(v, m, _mm_loadu_si64(p));
}

/// exp4d's 8-lane AVX-512 sibling: same reduction, same polynomial,
/// same underflow clamp (NLT_UQ keeps NaN lanes, matching exp4d's
/// andnot of an ordered compare).
RMCRT_TARGET_AVX512 inline __m512d exp8d(__m512d x) {
  // Same |x| ≤ ln2/2 fast path as exp4d: the reduction degenerates to
  // an exact identity there, so the short form is bitwise-identical and
  // the branch predicts taken for march-sized optical depths.
  const __m512d ax = _mm512_abs_pd(x);
  if (_mm512_cmp_pd_mask(ax, _mm512_set1_pd(0.34657359027997264),
                         _CMP_GT_OQ) == 0) {
    const __m512d r = x;
    const __m512d r2 = _mm512_mul_pd(r, r);
    const __m512d r4 = _mm512_mul_pd(r2, r2);
    const __m512d r8 = _mm512_mul_pd(r4, r4);
    const __m512d p01 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[1]),
                                        _mm512_set1_pd(kExpCoeff[0]));
    const __m512d p23 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[3]),
                                        _mm512_set1_pd(kExpCoeff[2]));
    const __m512d p45 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[5]),
                                        _mm512_set1_pd(kExpCoeff[4]));
    const __m512d p67 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[7]),
                                        _mm512_set1_pd(kExpCoeff[6]));
    const __m512d p89 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[9]),
                                        _mm512_set1_pd(kExpCoeff[8]));
    const __m512d pAB = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[11]),
                                        _mm512_set1_pd(kExpCoeff[10]));
    const __m512d pCD = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[13]),
                                        _mm512_set1_pd(kExpCoeff[12]));
    const __m512d q0 = _mm512_fmadd_pd(r2, p23, p01);
    const __m512d q1 = _mm512_fmadd_pd(r2, p67, p45);
    const __m512d q2 = _mm512_fmadd_pd(r2, pAB, p89);
    const __m512d w0 = _mm512_fmadd_pd(r4, q1, q0);
    const __m512d w1 = _mm512_fmadd_pd(r4, pCD, q2);
    return _mm512_fmadd_pd(r8, w1, w0);
  }
  const __m512d fn = _mm512_roundscale_pd(
      _mm512_mul_pd(x, _mm512_set1_pd(kExpLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(fn, _mm512_set1_pd(kExpLn2Hi), x);
  r = _mm512_fnmadd_pd(fn, _mm512_set1_pd(kExpLn2Lo), r);
  const __m512d r2 = _mm512_mul_pd(r, r);
  const __m512d r4 = _mm512_mul_pd(r2, r2);
  const __m512d r8 = _mm512_mul_pd(r4, r4);
  const __m512d p01 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[1]),
                                      _mm512_set1_pd(kExpCoeff[0]));
  const __m512d p23 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[3]),
                                      _mm512_set1_pd(kExpCoeff[2]));
  const __m512d p45 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[5]),
                                      _mm512_set1_pd(kExpCoeff[4]));
  const __m512d p67 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[7]),
                                      _mm512_set1_pd(kExpCoeff[6]));
  const __m512d p89 = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[9]),
                                      _mm512_set1_pd(kExpCoeff[8]));
  const __m512d pAB = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[11]),
                                      _mm512_set1_pd(kExpCoeff[10]));
  const __m512d pCD = _mm512_fmadd_pd(r, _mm512_set1_pd(kExpCoeff[13]),
                                      _mm512_set1_pd(kExpCoeff[12]));
  const __m512d q0 = _mm512_fmadd_pd(r2, p23, p01);
  const __m512d q1 = _mm512_fmadd_pd(r2, p67, p45);
  const __m512d q2 = _mm512_fmadd_pd(r2, pAB, p89);
  const __m512d w0 = _mm512_fmadd_pd(r4, q1, q0);
  const __m512d w1 = _mm512_fmadd_pd(r4, pCD, q2);
  const __m512d p = _mm512_fmadd_pd(r8, w1, w0);
  const __m256i n32 = _mm512_cvtpd_epi32(fn);
  const __m512i n64 = _mm512_cvtepi32_epi64(n32);
  const __m512i pow2 =
      _mm512_slli_epi64(_mm512_add_epi64(n64, _mm512_set1_epi64(1023)), 52);
  const __m512d result = _mm512_mul_pd(p, _mm512_castsi512_pd(pow2));
  const __mmask8 keep =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(-700.0), _CMP_NLT_UQ);
  return _mm512_maskz_mov_pd(keep, result);
}

/// Expand the low 4 bits of \p bits into a 4x64 lane mask.
RMCRT_TARGET_AVX2 inline __m256d maskFromBits(unsigned bits) {
  const __m256i laneBit = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(bits & 0xF));
  return _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(_mm256_and_si256(b, laneBit), laneBit));
}

/// Narrow a 4x64 double mask to the 4x32 integer mask an epi32 gather
/// wants (pick the sign-carrying high dword of each 64-bit lane).
RMCRT_TARGET_AVX2 inline __m128i mask32From64(__m256d m) {
  const __m256i idx = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), idx));
}

/// AVX-512 eligibility for the 8-lane kernel (the subsets it uses),
/// with RMCRT_FORCE_AVX2 as the escape hatch that keeps the AVX2 kernel
/// testable on AVX-512 hardware. Read per call so tests can toggle it.
bool avx512Usable() {
  static const bool hw =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512bw");
  if (!hw) return false;
  const char* e = std::getenv("RMCRT_FORCE_AVX2");
  return e == nullptr || e[0] == '\0' || e[0] == '0';
}

}  // namespace

RMCRT_TARGET_AVX2
void Tracer::traceRaysAvx2(int n, const Vector* origins, const Vector* dirs,
                           double* out, std::uint64_t& segments) const {
  assert(n > 0);
  const TraceLevel& L0 = m_levels.front();
  const PackedFieldView& pf = L0.packed;
  assert(pf.valid());
  const unsigned char* base = pf.bytes();
  const double* abskgBase = reinterpret_cast<const double*>(
      base + PackedFieldView::kAbskgByteOffset);
  const double* sigmaBase = reinterpret_cast<const double*>(
      base + PackedFieldView::kSigmaByteOffset);
  const int* cellTypeBase = reinterpret_cast<const int*>(
      base + PackedFieldView::kCellTypeByteOffset);
  const bool hasWalls = m_level0HasWalls;
  const bool multiLevel = m_levels.size() > 1;
  const LevelGeom& g = L0.geom;

  const __m256d vThreshold = _mm256_set1_pd(m_cfg.threshold);
  const __m256d vEmissivity = _mm256_set1_pd(m_walls.emissivity);
  const __m256d vOne = _mm256_set1_pd(1.0);
  const __m256d vZero = _mm256_setzero_pd();
  const __m256d vSign = _mm256_set1_pd(-0.0);
  // Band scale on gathered kappa (spectral pipeline); 1.0 in gray mode,
  // where the extra mul is bitwise neutral. Sources are never scaled.
  const __m256d vKappaScale = _mm256_set1_pd(m_cfg.kappaScale);
  const __m128i vWallType =
      _mm_set1_epi32(static_cast<int>(PackedCell::kWall));

  SetupQueue queue(L0, origins, dirs, n);
  PacketLanes P = {};
  unsigned aliveBits = 0;
  for (int lane = 0; lane < 8 && !queue.empty(); ++lane) {
    int idx;
    const RaySetup& rs = queue.pop(idx);
    fillLane(P, lane, rs, origins[idx], dirs[idx], idx);
    aliveBits |= 1u << lane;
  }

  while (aliveBits != 0) {
    for (int h = 0; h < 2; ++h) {
      const unsigned halfBits = (aliveBits >> (4 * h)) & 0xFu;
      if (halfBits == 0) continue;
      const int lo = 4 * h;

      if (halfBits == 0xFu) {
        // Hot path: all 4 lanes of this half are marching, so the whole
        // lane state lives in registers and every update is unmasked.
        // The loop commits one crossing per iteration and breaks — WITHOUT
        // committing — the moment any lane sees an event (wall cell,
        // extinction, allowed-box exit); the masked slow path below then
        // redoes that crossing with per-lane masks and retires/refills.
        // Events are rare (one per ray per tens-to-hundreds of
        // crossings), so nearly all segments march here.
        __m256d t0 = _mm256_load_pd(P.tMax[0] + lo);
        __m256d t1 = _mm256_load_pd(P.tMax[1] + lo);
        __m256d t2 = _mm256_load_pd(P.tMax[2] + lo);
        const __m256d d0 = _mm256_load_pd(P.tDelta[0] + lo);
        const __m256d d1 = _mm256_load_pd(P.tDelta[1] + lo);
        const __m256d d2 = _mm256_load_pd(P.tDelta[2] + lo);
        __m256d c0 = _mm256_load_pd(P.cnt[0] + lo);
        __m256d c1 = _mm256_load_pd(P.cnt[1] + lo);
        __m256d c2 = _mm256_load_pd(P.cnt[2] + lo);
        const __m256i s0 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(P.axStride[0] + lo));
        const __m256i s1 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(P.axStride[1] + lo));
        const __m256i s2 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(P.axStride[2] + lo));
        __m256d tCur = _mm256_load_pd(P.tCur + lo);
        __m256d trans = _mm256_load_pd(P.trans + lo);
        __m256d sumI = _mm256_load_pd(P.sumI + lo);
        __m256i off = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(P.off + lo));
        __m256d segAcc = vZero;  // committed nonzero crossings, per lane
        const __m256d vAllOnes =
            _mm256_castsi256_pd(_mm256_set1_epi64x(-1));

        for (;;) {
          const __m256i bytes = _mm256_add_epi64(_mm256_slli_epi64(off, 4),
                                                 _mm256_slli_epi64(off, 3));
          if (hasWalls) {
            const __m128i ct = _mm256_i64gather_epi32(cellTypeBase, bytes, 1);
            if (_mm_movemask_epi8(_mm_cmpeq_epi32(ct, vWallType)) != 0)
              break;
          }
          const __m256d abskg = _mm256_mul_pd(
              _mm256_i64gather_pd(abskgBase, bytes, 1), vKappaScale);
          const __m256d sig = _mm256_i64gather_pd(sigmaBase, bytes, 1);

          const __m256d yBeforeX = _mm256_cmp_pd(t1, t0, _CMP_LT_OQ);
          const __m256d m01 = _mm256_min_pd(t1, t0);
          const __m256d zFirst = _mm256_cmp_pd(t2, m01, _CMP_LT_OQ);
          const __m256d tNext = _mm256_min_pd(t2, m01);
          const __m256d segLen = _mm256_sub_pd(tNext, tCur);

          const __m256d expSeg =
              exp4d(_mm256_mul_pd(_mm256_xor_pd(abskg, vSign), segLen));
          const __m256d transNew = _mm256_mul_pd(trans, expSeg);
          const int eb = _mm256_movemask_pd(
              _mm256_cmp_pd(transNew, vThreshold, _CMP_LT_OQ));

          const __m256d mZ = zFirst;
          const __m256d mY = _mm256_andnot_pd(zFirst, yBeforeX);
          const __m256d mX = _mm256_andnot_pd(
              zFirst, _mm256_andnot_pd(yBeforeX, vAllOnes));
          const __m256d t0n =
              _mm256_blendv_pd(t0, _mm256_add_pd(tNext, d0), mX);
          const __m256d t1n =
              _mm256_blendv_pd(t1, _mm256_add_pd(tNext, d1), mY);
          const __m256d t2n =
              _mm256_blendv_pd(t2, _mm256_add_pd(tNext, d2), mZ);
          const __m256d c0n = _mm256_sub_pd(c0, _mm256_and_pd(vOne, mX));
          const __m256d c1n = _mm256_sub_pd(c1, _mm256_and_pd(vOne, mY));
          const __m256d c2n = _mm256_sub_pd(c2, _mm256_and_pd(vOne, mZ));
          const __m256d exited = _mm256_or_pd(
              _mm256_or_pd(_mm256_cmp_pd(c0n, vZero, _CMP_LT_OQ),
                           _mm256_cmp_pd(c1n, vZero, _CMP_LT_OQ)),
              _mm256_cmp_pd(c2n, vZero, _CMP_LT_OQ));
          const int xb = _mm256_movemask_pd(exited);
          if ((eb | xb) != 0) break;  // discard; slow path redoes this

          // Commit the crossing: absorb/emit with the *pre-segment*
          // transmissivity (the scalar operation order), then advance.
          sumI = _mm256_add_pd(
              sumI, _mm256_mul_pd(
                        _mm256_mul_pd(sig, _mm256_sub_pd(vOne, expSeg)),
                        trans));
          trans = transNew;
          t0 = t0n;
          t1 = t1n;
          t2 = t2n;
          c0 = c0n;
          c1 = c1n;
          c2 = c2n;
          off = _mm256_add_epi64(
              off, _mm256_and_si256(s0, _mm256_castpd_si256(mX)));
          off = _mm256_add_epi64(
              off, _mm256_and_si256(s1, _mm256_castpd_si256(mY)));
          off = _mm256_add_epi64(
              off, _mm256_and_si256(s2, _mm256_castpd_si256(mZ)));
          tCur = tNext;
          segAcc = _mm256_add_pd(
              segAcc,
              _mm256_and_pd(vOne,
                            _mm256_cmp_pd(segLen, vZero, _CMP_NEQ_UQ)));
        }

        _mm256_store_pd(P.tMax[0] + lo, t0);
        _mm256_store_pd(P.tMax[1] + lo, t1);
        _mm256_store_pd(P.tMax[2] + lo, t2);
        _mm256_store_pd(P.cnt[0] + lo, c0);
        _mm256_store_pd(P.cnt[1] + lo, c1);
        _mm256_store_pd(P.cnt[2] + lo, c2);
        _mm256_store_pd(P.tCur + lo, tCur);
        _mm256_store_pd(P.trans + lo, trans);
        _mm256_store_pd(P.sumI + lo, sumI);
        _mm256_store_si256(reinterpret_cast<__m256i*>(P.off + lo), off);
        alignas(32) double segLanes[4];
        _mm256_store_pd(segLanes, segAcc);
        segments += static_cast<std::uint64_t>(segLanes[0] + segLanes[1] +
                                               segLanes[2] + segLanes[3]);
      }

      const __m256d alive = maskFromBits(halfBits);

      const __m256i off = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(P.off + lo));
      // Byte offset of each lane's record: off * 24 = (off<<4) + (off<<3).
      const __m256i byteOff = _mm256_add_epi64(_mm256_slli_epi64(off, 4),
                                               _mm256_slli_epi64(off, 3));

      __m256d trans =
          _mm256_load_pd(P.trans + lo);
      __m256d sumI = _mm256_load_pd(P.sumI + lo);

      // Property gathers for all alive lanes (the record layout keeps
      // abskg and sigmaT4OverPi in one cache line per lane). Masked so
      // dead lanes never dereference their stale offsets.
      const __m256d abskg = _mm256_mul_pd(
          _mm256_mask_i64gather_pd(vZero, abskgBase, byteOff, alive, 1),
          vKappaScale);
      const __m256d sig =
          _mm256_mask_i64gather_pd(vZero, sigmaBase, byteOff, alive, 1);

      // Wall-cell lanes: add the wall emission seen through the
      // accumulated transmissivity, then retire. Levels packed without
      // any wall record skip the cellType gather entirely.
      __m256d wall = vZero;
      if (hasWalls) {
        const __m128i ct = _mm256_mask_i64gather_epi32(
            _mm_setzero_si128(), cellTypeBase, byteOff, mask32From64(alive),
            1);
        const __m256i wall64 =
            _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(ct, vWallType));
        wall = _mm256_and_pd(_mm256_castsi256_pd(wall64), alive);
        const __m256d wallContrib = _mm256_mul_pd(
            _mm256_mul_pd(vEmissivity, sig), trans);
        sumI = _mm256_add_pd(sumI, _mm256_and_pd(wallContrib, wall));
      }
      const __m256d live = _mm256_andnot_pd(wall, alive);

      // Branchless min-axis selection — identical tie-breaking (x beats
      // y beats z) and identical IEEE min semantics to the scalar march:
      // minpd(a, b) returns b unless a < b, exactly `a < b ? a : b`.
      const __m256d t0 = _mm256_load_pd(P.tMax[0] + lo);
      const __m256d t1 = _mm256_load_pd(P.tMax[1] + lo);
      const __m256d t2 = _mm256_load_pd(P.tMax[2] + lo);
      const __m256d yBeforeX = _mm256_cmp_pd(t1, t0, _CMP_LT_OQ);
      const __m256d m01 = _mm256_min_pd(t1, t0);
      const __m256d zFirst = _mm256_cmp_pd(t2, m01, _CMP_LT_OQ);
      const __m256d tNext = _mm256_min_pd(t2, m01);
      const __m256d tCur = _mm256_load_pd(P.tCur + lo);
      const __m256d segLen = _mm256_sub_pd(tNext, tCur);

      // Absorb + emit along the segment; same operation order as the
      // scalar march, with exp4d standing in for libm exp.
      const __m256d expSeg =
          exp4d(_mm256_mul_pd(_mm256_xor_pd(abskg, vSign), segLen));
      const __m256d contrib = _mm256_mul_pd(
          _mm256_mul_pd(sig, _mm256_sub_pd(vOne, expSeg)), trans);
      sumI = _mm256_add_pd(sumI, _mm256_and_pd(contrib, live));
      trans = _mm256_blendv_pd(trans, _mm256_mul_pd(trans, expSeg), live);

      // Segment accounting matches the scalar rule: zero-length
      // crossings do not count.
      const __m256d segNZ = _mm256_cmp_pd(segLen, vZero, _CMP_NEQ_UQ);
      segments += static_cast<std::uint64_t>(__builtin_popcount(
          static_cast<unsigned>(
              _mm256_movemask_pd(_mm256_and_pd(live, segNZ)))));

      // Extinguished lanes retire without advancing (the scalar march
      // returns before the advance); everything else advances.
      const __m256d ext = _mm256_and_pd(
          live, _mm256_cmp_pd(trans, vThreshold, _CMP_LT_OQ));
      const __m256d adv = _mm256_andnot_pd(ext, live);

      __m256d newTCur = _mm256_blendv_pd(tCur, tNext, adv);

      // Per-axis advance masks: z if it won, else y if it beat x, else x.
      const __m256d mAxis[3] = {
          _mm256_andnot_pd(zFirst,
                           _mm256_andnot_pd(yBeforeX,
                                            _mm256_castsi256_pd(
                                                _mm256_set1_epi64x(-1)))),
          _mm256_andnot_pd(zFirst, yBeforeX), zFirst};

      __m256i newOff = off;
      __m256d exited = vZero;
      for (int a = 0; a < 3; ++a) {
        const __m256d ma = _mm256_and_pd(mAxis[a], adv);
        const __m256d ta = _mm256_load_pd(P.tMax[a] + lo);
        const __m256d da = _mm256_load_pd(P.tDelta[a] + lo);
        _mm256_store_pd(P.tMax[a] + lo,
                        _mm256_blendv_pd(ta, _mm256_add_pd(tNext, da), ma));
        const __m256d ca = _mm256_load_pd(P.cnt[a] + lo);
        const __m256d newCa = _mm256_sub_pd(ca, _mm256_and_pd(vOne, ma));
        _mm256_store_pd(P.cnt[a] + lo, newCa);
        const __m256i sa = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(P.axStride[a] + lo));
        newOff = _mm256_add_epi64(
            newOff,
            _mm256_and_si256(sa, _mm256_castpd_si256(ma)));
        exited = _mm256_or_pd(exited,
                              _mm256_cmp_pd(newCa, vZero, _CMP_LT_OQ));
      }
      exited = _mm256_and_pd(exited, adv);
      _mm256_store_si256(reinterpret_cast<__m256i*>(P.off + lo), newOff);
      _mm256_store_pd(P.tCur + lo, newTCur);
      _mm256_store_pd(P.trans + lo, trans);
      _mm256_store_pd(P.sumI + lo, sumI);

      // Retire finished lanes (wall, extinction, allowed-box exit) and
      // refill from the pending bundle.
      const __m256d retire =
          _mm256_or_pd(_mm256_or_pd(wall, ext), exited);
      unsigned rbits = static_cast<unsigned>(_mm256_movemask_pd(retire));
      if (rbits == 0) continue;
      const unsigned ebits = static_cast<unsigned>(_mm256_movemask_pd(exited));
      while (rbits != 0) {
        const int bit = __builtin_ctz(rbits);
        rbits &= rbits - 1;
        const int lane = lo + bit;
        double laneSum = P.sumI[lane];
        if ((ebits >> bit) & 1u) {
          // The lane stepped out of `allowed`: reconstruct the stepped
          // cell and the crossing position, then follow the scalar
          // march's exit logic (domain wall, or coarse continuation).
          IntVector cur;
          for (int a = 0; a < 3; ++a) {
            const std::int64_t taken =
                P.initCnt[a][lane] - static_cast<std::int64_t>(P.cnt[a][lane]);
            cur[a] = P.start[a][lane] +
                     P.step[a][lane] * static_cast<int>(taken);
          }
          double laneTrans = P.trans[lane];
          if (!g.cells.contains(cur) || !multiLevel) {
            laneSum += m_walls.emissivity * m_walls.sigmaT4OverPi * laneTrans;
          } else {
            const Vector pos =
                P.origin[lane] + P.dir[lane] * P.tCur[lane];
            finishRayCoarse(pos, P.dir[lane], laneSum, laneTrans, segments);
          }
        }
        out[P.rayIdx[lane]] = laneSum;
        if (!queue.empty()) {
          int idx;
          const RaySetup& rs = queue.pop(idx);
          fillLane(P, lane, rs, origins[idx], dirs[idx], idx);
        } else {
          aliveBits &= ~(1u << lane);
        }
      }
    }
  }
}

// The AVX-512 march runs TWO independent 8-lane packets interleaved in
// one loop. A single packet is latency-bound: each iteration's
// gather -> exp -> transmissivity-update chain leaves the FMA ports idle
// for most of its span, and the second packet's chain (fully
// independent data) fills those gaps — measured ~+22% at L2-resident
// sizes and more where the gathers miss to L3/DRAM. A third packet
// regresses: 3x17 live vector registers exceed the 32 architectural
// zmm and the spill traffic cancels the overlap win.
//
// The step body is stamped out per packet with a macro rather than a
// helper function or lambda: GCC does not propagate target attributes
// into lambdas (the intrinsics would fail to compile), and an
// out-of-line helper would round-trip all seventeen packet registers
// through memory on every call. The macro expands inside the member
// function, so the multi-level retirement path can call
// finishRayCoarse directly. `PFX` prefixes every packet-local; shared
// state (queue, bases, constants, masks config) is captured from the
// enclosing scope.
//
// RMCRT_DECL_PKT: stage up to 8 rays into PFX##P, then lift the whole
// packet into registers. Dead lanes carry zeros (P is zero-initialized)
// and every commit is k-masked, so they march harmlessly and never
// retire. PFX##ridx keeps each lane's bundle index register-resident
// for the single-level scatter retirement; only lanes in `retire`
// (a subset of alive) ever scatter, so stale indices on dead lanes are
// harmless.
#define RMCRT_DECL_PKT(PFX)                                                    \
  PacketLanes PFX##P = {};                                                     \
  __mmask8 PFX##alive = 0;                                                     \
  for (int lane = 0; lane < 8 && !queue.empty(); ++lane) {                     \
    int idx;                                                                   \
    const RaySetup& rs = queue.pop(idx);                                       \
    fillLane(PFX##P, lane, rs, origins[idx], dirs[idx], idx);                  \
    PFX##alive = static_cast<__mmask8>(PFX##alive | (1u << lane));             \
  }                                                                            \
  __m512d PFX##t0 = _mm512_load_pd(PFX##P.tMax[0]);                            \
  __m512d PFX##t1 = _mm512_load_pd(PFX##P.tMax[1]);                            \
  __m512d PFX##t2 = _mm512_load_pd(PFX##P.tMax[2]);                            \
  __m512d PFX##d0 = _mm512_load_pd(PFX##P.tDelta[0]);                          \
  __m512d PFX##d1 = _mm512_load_pd(PFX##P.tDelta[1]);                          \
  __m512d PFX##d2 = _mm512_load_pd(PFX##P.tDelta[2]);                          \
  __m512d PFX##c0 = _mm512_load_pd(PFX##P.cnt[0]);                             \
  __m512d PFX##c1 = _mm512_load_pd(PFX##P.cnt[1]);                             \
  __m512d PFX##c2 = _mm512_load_pd(PFX##P.cnt[2]);                             \
  __m512i PFX##s0 = _mm512_load_si512(PFX##P.axStride[0]);                     \
  __m512i PFX##s1 = _mm512_load_si512(PFX##P.axStride[1]);                     \
  __m512i PFX##s2 = _mm512_load_si512(PFX##P.axStride[2]);                     \
  __m512i PFX##off = _mm512_load_si512(PFX##P.off);                            \
  __m512d PFX##tCur = _mm512_load_pd(PFX##P.tCur);                             \
  __m512d PFX##trans = _mm512_load_pd(PFX##P.trans);                           \
  __m512d PFX##sumI = _mm512_load_pd(PFX##P.sumI);                             \
  __m512d PFX##segAcc = vZero;                                                 \
  alignas(64) std::int64_t PFX##idxInit[8];                                    \
  for (int lane = 0; lane < 8; ++lane)                                         \
    PFX##idxInit[lane] = PFX##P.rayIdx[lane];                                  \
  __m512i PFX##ridx = _mm512_load_si512(PFX##idxInit);

// RMCRT_STEP: one DDA crossing for every live lane of one packet, then
// retirement/refill. Identical operation order and IEEE semantics to
// the scalar march (see the numerical contract in the file header):
// wall test first, absorb+emit with the pre-segment transmissivity,
// zero-length crossings uncounted, extinction checked before the
// advance commits, min-axis tie-break x beats y beats z.
//
// Retirement splits on multiLevel (loop-invariant, perfectly
// predicted). Single level: `allowed` is the whole domain, so every
// exited lane takes the domain-wall term (the scalar
// `!contains || !multiLevel` arm) and all retiring lanes finish with
// one mul+masked-add (the scalar two-rounding order - no FMA) and one
// masked scatter; refill is register-only broadcast inserts straight
// from the setup chunk, no spills and no scalar-side metadata. Multi
// level: spill the rows the scalar-side code reads (wide stores, later
// narrow loads - that direction store-forwards cleanly), reconstruct
// the stepped cell, finish via domain wall or coarse continuation, and
// refill through fillLaneMeta plus the same register-only inserts.
#define RMCRT_STEP(PFX)                                                        \
  if (PFX##alive != 0) {                                                       \
    /* Byte offset of each lane's record: off*24 = (off<<4)+(off<<3). */       \
    const __m512i bytes = _mm512_add_epi64(_mm512_slli_epi64(PFX##off, 4),     \
                                           _mm512_slli_epi64(PFX##off, 3));    \
    /* Wall-cell lanes: wall emission through the accumulated */               \
    /* transmissivity, no absorb, no advance - they retire below. */           \
    /* Levels packed without any wall record skip the gather. */               \
    __mmask8 wallM = 0;                                                        \
    if (hasWalls) {                                                            \
      const __m256i ct = _mm512_mask_i64gather_epi32(                          \
          _mm256_setzero_si256(), PFX##alive, bytes, cellTypeBase, 1);         \
      wallM = _mm256_mask_cmpeq_epi32_mask(PFX##alive, ct, vWallType);         \
    }                                                                          \
    const __m512d abskg = _mm512_mul_pd(                                       \
        _mm512_mask_i64gather_pd(vZero, PFX##alive, bytes, abskgBase, 1),      \
        vKappaScale);                                                          \
    const __m512d sig =                                                        \
        _mm512_mask_i64gather_pd(vZero, PFX##alive, bytes, sigmaBase, 1);      \
    PFX##sumI = _mm512_mask_add_pd(                                            \
        PFX##sumI, wallM, PFX##sumI,                                           \
        _mm512_mul_pd(_mm512_mul_pd(vEmissivity, sig), PFX##trans));           \
    const __mmask8 live = static_cast<__mmask8>(PFX##alive & ~wallM);          \
    /* Min-axis selection: minpd(a, b) is exactly `a < b ? a : b`. */          \
    const __mmask8 yBeforeX =                                                  \
        _mm512_cmp_pd_mask(PFX##t1, PFX##t0, _CMP_LT_OQ);                      \
    const __m512d m01 = _mm512_min_pd(PFX##t1, PFX##t0);                       \
    const __mmask8 zFirst = _mm512_cmp_pd_mask(PFX##t2, m01, _CMP_LT_OQ);      \
    const __m512d tNext = _mm512_min_pd(PFX##t2, m01);                         \
    const __m512d segLen = _mm512_sub_pd(tNext, PFX##tCur);                    \
    const __m512d expSeg =                                                     \
        exp8d(_mm512_mul_pd(_mm512_xor_pd(abskg, vSign), segLen));             \
    PFX##sumI = _mm512_mask_add_pd(                                            \
        PFX##sumI, live, PFX##sumI,                                            \
        _mm512_mul_pd(_mm512_mul_pd(sig, _mm512_sub_pd(vOne, expSeg)),         \
                      PFX##trans));                                            \
    PFX##trans = _mm512_mask_mul_pd(PFX##trans, live, PFX##trans, expSeg);     \
    const __mmask8 segNZ =                                                     \
        _mm512_mask_cmp_pd_mask(live, segLen, vZero, _CMP_NEQ_UQ);             \
    PFX##segAcc = _mm512_mask_add_pd(PFX##segAcc, segNZ, PFX##segAcc, vOne);   \
    /* Extinguished lanes retire without advancing (the scalar march */        \
    /* returns before the advance). */                                         \
    const __mmask8 ext =                                                       \
        _mm512_mask_cmp_pd_mask(live, PFX##trans, vThreshold, _CMP_LT_OQ);     \
    const __mmask8 adv = static_cast<__mmask8>(live & ~ext);                   \
    const __mmask8 mZ = static_cast<__mmask8>(zFirst & adv);                   \
    const __mmask8 mY = static_cast<__mmask8>(~zFirst & yBeforeX & adv);       \
    const __mmask8 mX = static_cast<__mmask8>(~zFirst & ~yBeforeX & adv);      \
    PFX##t0 = _mm512_mask_add_pd(PFX##t0, mX, tNext, PFX##d0);                 \
    PFX##t1 = _mm512_mask_add_pd(PFX##t1, mY, tNext, PFX##d1);                 \
    PFX##t2 = _mm512_mask_add_pd(PFX##t2, mZ, tNext, PFX##d2);                 \
    PFX##c0 = _mm512_mask_sub_pd(PFX##c0, mX, PFX##c0, vOne);                  \
    PFX##c1 = _mm512_mask_sub_pd(PFX##c1, mY, PFX##c1, vOne);                  \
    PFX##c2 = _mm512_mask_sub_pd(PFX##c2, mZ, PFX##c2, vOne);                  \
    PFX##off = _mm512_mask_add_epi64(PFX##off, mX, PFX##off, PFX##s0);         \
    PFX##off = _mm512_mask_add_epi64(PFX##off, mY, PFX##off, PFX##s1);         \
    PFX##off = _mm512_mask_add_epi64(PFX##off, mZ, PFX##off, PFX##s2);         \
    PFX##tCur = _mm512_mask_mov_pd(PFX##tCur, adv, tNext);                     \
    const __mmask8 exited = static_cast<__mmask8>(                             \
        adv & (_mm512_cmp_pd_mask(PFX##c0, vZero, _CMP_LT_OQ) |                \
               _mm512_cmp_pd_mask(PFX##c1, vZero, _CMP_LT_OQ) |                \
               _mm512_cmp_pd_mask(PFX##c2, vZero, _CMP_LT_OQ)));               \
    const __mmask8 retire = static_cast<__mmask8>(wallM | ext | exited);       \
    if (retire != 0) {                                                         \
      __mmask8 refill = 0;                                                     \
      if (!multiLevel) {                                                       \
        const __m512d outV = _mm512_mask_add_pd(                               \
            PFX##sumI, exited, PFX##sumI,                                      \
            _mm512_mul_pd(vWallTerm, PFX##trans));                             \
        _mm512_mask_i64scatter_pd(out, retire, PFX##ridx, outV, 8);            \
        unsigned rbits = retire;                                               \
        while (rbits != 0) {                                                   \
          const int lane = __builtin_ctz(rbits);                               \
          rbits &= rbits - 1;                                                  \
          const __mmask8 lm = static_cast<__mmask8>(1u << lane);               \
          if (!queue.empty()) {                                                \
            int idx;                                                           \
            const RaySetup& rs = queue.pop(idx);                               \
            const std::int64_t idx64 = idx;                                    \
            RMCRT_REFILL_LANE(PFX)                                             \
            PFX##ridx = insertLane64(PFX##ridx, lm, &idx64);                   \
            refill = static_cast<__mmask8>(refill | lm);                       \
          } else {                                                             \
            RMCRT_KILL_LANE(PFX)                                               \
          }                                                                    \
        }                                                                      \
      } else {                                                                 \
        _mm512_store_pd(PFX##P.cnt[0], PFX##c0);                               \
        _mm512_store_pd(PFX##P.cnt[1], PFX##c1);                               \
        _mm512_store_pd(PFX##P.cnt[2], PFX##c2);                               \
        _mm512_store_pd(PFX##P.tCur, PFX##tCur);                               \
        _mm512_store_pd(PFX##P.trans, PFX##trans);                             \
        _mm512_store_pd(PFX##P.sumI, PFX##sumI);                               \
        unsigned rbits = retire;                                               \
        while (rbits != 0) {                                                   \
          const int lane = __builtin_ctz(rbits);                               \
          rbits &= rbits - 1;                                                  \
          double laneSum = PFX##P.sumI[lane];                                  \
          if ((exited >> lane) & 1u) {                                         \
            /* The lane stepped out of `allowed`: reconstruct the */           \
            /* stepped cell and the crossing position, then follow */          \
            /* the scalar exit logic (wall or coarse continuation). */         \
            IntVector cur;                                                     \
            for (int a = 0; a < 3; ++a) {                                      \
              const std::int64_t taken =                                       \
                  PFX##P.initCnt[a][lane] -                                    \
                  static_cast<std::int64_t>(PFX##P.cnt[a][lane]);              \
              cur[a] = PFX##P.start[a][lane] +                                 \
                       PFX##P.step[a][lane] * static_cast<int>(taken);         \
            }                                                                  \
            double laneTrans = PFX##P.trans[lane];                             \
            if (!g.cells.contains(cur)) {                                      \
              laneSum +=                                                       \
                  m_walls.emissivity * m_walls.sigmaT4OverPi * laneTrans;      \
            } else {                                                           \
              const Vector pos =                                               \
                  PFX##P.origin[lane] + PFX##P.dir[lane] * PFX##P.tCur[lane];  \
              finishRayCoarse(pos, PFX##P.dir[lane], laneSum, laneTrans,       \
                              segments);                                       \
            }                                                                  \
          }                                                                    \
          out[PFX##P.rayIdx[lane]] = laneSum;                                  \
          const __mmask8 lm = static_cast<__mmask8>(1u << lane);               \
          if (!queue.empty()) {                                                \
            int idx;                                                           \
            const RaySetup& rs = queue.pop(idx);                               \
            fillLaneMeta(PFX##P, lane, rs, origins[idx], dirs[idx], idx);      \
            RMCRT_REFILL_LANE(PFX)                                             \
            refill = static_cast<__mmask8>(refill | lm);                       \
          } else {                                                             \
            RMCRT_KILL_LANE(PFX)                                               \
          }                                                                    \
        }                                                                      \
      }                                                                        \
      if (refill != 0) {                                                       \
        /* Fresh rays start at t = 0 with unit transmissivity and */           \
        /* nothing accumulated - constants, no memory round trip. */           \
        PFX##tCur =                                                            \
            _mm512_maskz_mov_pd(static_cast<__mmask8>(~refill), PFX##tCur);    \
        PFX##trans = _mm512_mask_mov_pd(PFX##trans, refill, vOne);             \
        PFX##sumI =                                                            \
            _mm512_maskz_mov_pd(static_cast<__mmask8>(~refill), PFX##sumI);    \
      }                                                                        \
    }                                                                          \
  }

// Refill lane `lm` straight from the setup chunk with register-only
// broadcast inserts (see insertLane).
#define RMCRT_REFILL_LANE(PFX)                                                 \
  PFX##t0 = insertLane(PFX##t0, lm, &rs.tMax[0]);                              \
  PFX##t1 = insertLane(PFX##t1, lm, &rs.tMax[1]);                              \
  PFX##t2 = insertLane(PFX##t2, lm, &rs.tMax[2]);                              \
  PFX##d0 = insertLane(PFX##d0, lm, &rs.tDelta[0]);                            \
  PFX##d1 = insertLane(PFX##d1, lm, &rs.tDelta[1]);                            \
  PFX##d2 = insertLane(PFX##d2, lm, &rs.tDelta[2]);                            \
  PFX##c0 = insertLane(PFX##c0, lm, &rs.cnt[0]);                               \
  PFX##c1 = insertLane(PFX##c1, lm, &rs.cnt[1]);                               \
  PFX##c2 = insertLane(PFX##c2, lm, &rs.cnt[2]);                               \
  PFX##s0 = insertLane64(PFX##s0, lm, &rs.axStride[0]);                        \
  PFX##s1 = insertLane64(PFX##s1, lm, &rs.axStride[1]);                        \
  PFX##s2 = insertLane64(PFX##s2, lm, &rs.axStride[2]);                        \
  PFX##off = insertLane64(PFX##off, lm, &rs.off);

// The bundle is drained: drop the lane from `alive` and park its stale
// (possibly out-of-window) offset on record 0 so it can never feed a
// gather again.
#define RMCRT_KILL_LANE(PFX)                                                   \
  PFX##alive = static_cast<__mmask8>(PFX##alive & ~lm);                        \
  PFX##off = _mm512_maskz_mov_epi64(static_cast<__mmask8>(~lm), PFX##off);

// GCC 12's avx512 headers implement the all-ones-mask forms of
// _mm512_slli_epi64 / _mm512_min_pd via _mm512_undefined_pd(), whose
// `__Y = __Y` self-init still trips -Wmaybe-uninitialized once the
// intrinsics inline into a loop this deep. Header-internal false
// positive, not our state.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
RMCRT_TARGET_AVX512
void Tracer::traceRaysAvx512(int n, const Vector* origins, const Vector* dirs,
                             double* out, std::uint64_t& segments) const {
  assert(n > 0);
  const TraceLevel& L0 = m_levels.front();
  const PackedFieldView& pf = L0.packed;
  assert(pf.valid());
  const unsigned char* base = pf.bytes();
  const double* abskgBase = reinterpret_cast<const double*>(
      base + PackedFieldView::kAbskgByteOffset);
  const double* sigmaBase = reinterpret_cast<const double*>(
      base + PackedFieldView::kSigmaByteOffset);
  const int* cellTypeBase = reinterpret_cast<const int*>(
      base + PackedFieldView::kCellTypeByteOffset);
  const bool hasWalls = m_level0HasWalls;
  const bool multiLevel = m_levels.size() > 1;
  const LevelGeom& g = L0.geom;

  const __m512d vThreshold = _mm512_set1_pd(m_cfg.threshold);
  const __m512d vEmissivity = _mm512_set1_pd(m_walls.emissivity);
  const __m512d vOne = _mm512_set1_pd(1.0);
  const __m512d vZero = _mm512_setzero_pd();
  const __m512d vSign = _mm512_set1_pd(-0.0);
  // Band scale on gathered kappa (spectral pipeline); 1.0 in gray mode,
  // where the extra mul is bitwise neutral. Sources are never scaled.
  const __m512d vKappaScale = _mm512_set1_pd(m_cfg.kappaScale);
  const __m256i vWallType =
      _mm256_set1_epi32(static_cast<int>(PackedCell::kWall));
  // Hoisted domain-wall emission factor for the single-level vectorized
  // retirement; the scalar march multiplies the same product before the
  // separately rounded add.
  const __m512d vWallTerm =
      _mm512_set1_pd(m_walls.emissivity * m_walls.sigmaT4OverPi);

  // Both packets draw rays from one shared queue. Ray-to-packet
  // assignment does not affect results: each ray's march is independent
  // and bitwise-deterministic, results land at out[ray] via its bundle
  // index, and the segment total is a per-ray sum.
  SetupQueue queue(L0, origins, dirs, n);
  RMCRT_DECL_PKT(A)
  RMCRT_DECL_PKT(B)

  while ((Aalive | Balive) != 0) {
    RMCRT_STEP(A)
    RMCRT_STEP(B)
  }

  // Lane counts are integer-valued doubles well under 2^53, so the
  // horizontal sum is exact.
  alignas(64) double segLanes[8];
  _mm512_store_pd(segLanes, _mm512_add_pd(AsegAcc, BsegAcc));
  double committed = 0.0;
  for (int i = 0; i < 8; ++i) committed += segLanes[i];
  segments += static_cast<std::uint64_t>(committed);
}

#pragma GCC diagnostic pop

#undef RMCRT_DECL_PKT
#undef RMCRT_STEP
#undef RMCRT_REFILL_LANE
#undef RMCRT_KILL_LANE

void Tracer::traceRaysSimd(int n, const Vector* origins, const Vector* dirs,
                           double* out, std::uint64_t& segments) const {
  if (avx512Usable())
    traceRaysAvx512(n, origins, dirs, out, segments);
  else
    traceRaysAvx2(n, origins, dirs, out, segments);
}

const char* Tracer::simdIsa() {
  if (!simdSupported()) return "none";
  return avx512Usable() ? "avx512" : "avx2";
}

#else  // !RMCRT_SIMD_X86

void Tracer::traceRaysSimd(int n, const Vector* origins, const Vector* dirs,
                           double* out, std::uint64_t& segments) const {
  // Non-x86 build: simdSupported() is constant-false so this is
  // unreachable through the public dispatch; keep a correct fallback for
  // direct callers anyway.
  traceRaysScalar(n, origins, dirs, out, segments);
}

const char* Tracer::simdIsa() { return "none"; }

#endif  // RMCRT_SIMD_X86

}  // namespace rmcrt::core
