#include "core/dom_solver.h"

#include <cassert>
#include <cmath>

namespace rmcrt::core {

std::vector<Ordinate> levelSymmetricQuadrature(int n) {
  std::vector<Ordinate> quad;
  if (n <= 2) {
    // S2: one ordinate per octant along (±1,±1,±1)/sqrt(3), w = pi/2.
    const double mu = 1.0 / std::sqrt(3.0);
    const double w = 4.0 * M_PI / 8.0;
    for (int sx = -1; sx <= 1; sx += 2)
      for (int sy = -1; sy <= 1; sy += 2)
        for (int sz = -1; sz <= 1; sz += 2)
          quad.push_back(Ordinate{Vector(sx * mu, sy * mu, sz * mu), w});
    return quad;
  }
  // S4 level-symmetric: direction cosines {mu1, mu2} with
  // 2*mu1^2 + mu2^2 = 1, mu1 = 0.2958759; three permutations per octant,
  // equal weights summing to 4*pi over 24 ordinates.
  const double mu1 = 0.2958759;
  const double mu2 = std::sqrt(1.0 - 2.0 * mu1 * mu1);
  const double w = 4.0 * M_PI / 24.0;
  const double combos[3][3] = {
      {mu1, mu1, mu2}, {mu1, mu2, mu1}, {mu2, mu1, mu1}};
  for (int sx = -1; sx <= 1; sx += 2) {
    for (int sy = -1; sy <= 1; sy += 2) {
      for (int sz = -1; sz <= 1; sz += 2) {
        for (const auto& c : combos) {
          quad.push_back(
              Ordinate{Vector(sx * c[0], sy * c[1], sz * c[2]), w});
        }
      }
    }
  }
  return quad;
}

DomSolver::DomSolver(const LevelGeom& geom, const RadiationFieldsView& fields,
                     const WallProperties& walls, int order)
    : m_geom(geom),
      m_fields(fields),
      m_walls(walls),
      m_quad(levelSymmetricQuadrature(order)) {}

void DomSolver::sweepOrdinate(const Ordinate& ord,
                              grid::CCVariable<double>& intensity) const {
  const Vector& d = ord.dir;
  const IntVector lo = m_geom.cells.low();
  const IntVector hi = m_geom.cells.high();
  const Vector invDx(std::abs(d.x()) / m_geom.dx.x(),
                     std::abs(d.y()) / m_geom.dx.y(),
                     std::abs(d.z()) / m_geom.dx.z());

  // Sweep from the upwind corner: ascending along axes with positive
  // direction cosine, descending otherwise.
  const int x0 = d.x() >= 0 ? lo.x() : hi.x() - 1;
  const int x1 = d.x() >= 0 ? hi.x() : lo.x() - 1;
  const int dxs = d.x() >= 0 ? 1 : -1;
  const int y0 = d.y() >= 0 ? lo.y() : hi.y() - 1;
  const int y1 = d.y() >= 0 ? hi.y() : lo.y() - 1;
  const int dys = d.y() >= 0 ? 1 : -1;
  const int z0 = d.z() >= 0 ? lo.z() : hi.z() - 1;
  const int z1 = d.z() >= 0 ? hi.z() : lo.z() - 1;
  const int dzs = d.z() >= 0 ? 1 : -1;

  const double wallI = m_walls.emissivity * m_walls.sigmaT4OverPi;

  for (int z = z0; z != z1; z += dzs) {
    for (int y = y0; y != y1; y += dys) {
      for (int x = x0; x != x1; x += dxs) {
        const IntVector c(x, y, z);
        // Upwind intensities (wall emission at domain inflow faces, or an
        // in-domain wall cell's emission).
        auto upwindI = [&](int axis, int stepBack) -> double {
          IntVector u = c;
          u[axis] -= stepBack;
          if (!m_geom.cells.contains(u)) return wallI;
          if (m_fields.cellType.valid() &&
              m_fields.cellType[u] == grid::CellType::Wall)
            return m_walls.emissivity * m_fields.sigmaT4OverPi[u];
          return intensity[u];
        };
        const double iux = upwindI(0, dxs);
        const double iuy = upwindI(1, dys);
        const double iuz = upwindI(2, dzs);

        const double kappa = m_fields.abskg[c];
        // Step-scheme upwind finite volume:
        // (|dx|+|dy|+|dz|+kappa) I = kappa*S + sum(|d_i| I_upwind_i)
        const double denom = invDx.x() + invDx.y() + invDx.z() + kappa;
        const double numer = kappa * m_fields.sigmaT4OverPi[c] +
                             invDx.x() * iux + invDx.y() * iuy +
                             invDx.z() * iuz;
        intensity[c] = numer / denom;
      }
    }
  }
}

void DomSolver::computeIncidentRadiation(grid::CCVariable<double>& G) const {
  G.fill(0.0);
  grid::CCVariable<double> intensity(m_geom.cells, 0.0);
  for (const Ordinate& ord : m_quad) {
    sweepOrdinate(ord, intensity);
    for (const IntVector& c : m_geom.cells) G[c] += ord.weight * intensity[c];
  }
}

void DomSolver::computeDivQ(const CellRange& cells,
                            MutableFieldView<double> divQ) const {
  grid::CCVariable<double> G(m_geom.cells, 0.0);
  computeIncidentRadiation(G);
  for (const IntVector& c : cells) {
    const double kappa = m_fields.abskg[c];
    divQ[c] = 4.0 * M_PI * kappa *
              (m_fields.sigmaT4OverPi[c] - G[c] / (4.0 * M_PI));
  }
}

}  // namespace rmcrt::core
