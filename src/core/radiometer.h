#pragma once

/// \file radiometer.h
/// The virtual radiometer: Uintah RMCRT's instrument model (used in the
/// CCMSC boiler validation campaigns alongside the divQ solve this paper
/// scales). A radiometer sits at a physical location, looks along a unit
/// direction, and integrates incoming intensity over a cone of
/// half-angle theta — exactly what a physical narrow-angle radiometer
/// mounted in a boiler wall measures. Monte Carlo: directions sampled
/// uniformly over the spherical cap, flux = mean(I) * solid angle.

#include <cmath>

#include "core/ray_tracer.h"

namespace rmcrt::core {

/// Radiometer description.
struct RadiometerSpec {
  Vector position;          ///< physical mounting point (inside the domain)
  Vector viewDirection;     ///< unit vector the instrument looks along
  double halfAngleRadians = 0.2;  ///< cone half-angle (narrow-angle inst.)
  int nRays = 500;
};

/// Result of one radiometer evaluation.
struct RadiometerReading {
  double meanIntensity = 0.0;   ///< [W/m^2/sr] average over the cone
  double solidAngle = 0.0;      ///< [sr] of the viewing cone
  double flux = 0.0;            ///< meanIntensity * solidAngle [W/m^2]
};

/// Evaluate a radiometer against an existing tracer (any level stack).
///
/// Directions are sampled uniformly on the spherical cap around
/// viewDirection: cosTheta uniform in [cos(halfAngle), 1].
inline RadiometerReading evaluateRadiometer(const Tracer& tracer,
                                            const RadiometerSpec& spec) {
  const Vector w = spec.viewDirection.normalized();
  // Orthonormal basis (u, v, w).
  const Vector ref = std::abs(w.x()) < 0.9 ? Vector(1, 0, 0) : Vector(0, 1, 0);
  const Vector u = Vector(w.y() * ref.z() - w.z() * ref.y(),
                          w.z() * ref.x() - w.x() * ref.z(),
                          w.x() * ref.y() - w.y() * ref.x())
                       .normalized();
  const Vector v(w.y() * u.z() - w.z() * u.y(),
                 w.z() * u.x() - w.x() * u.z(),
                 w.x() * u.y() - w.y() * u.x());

  const double cosMax = std::cos(spec.halfAngleRadians);
  RadiometerReading out;
  out.solidAngle = 2.0 * M_PI * (1.0 - cosMax);

  double sum = 0.0;
  Rng rng(tracer.config().seed ^ 0x52414449ull);  // "RADI"
  for (int r = 0; r < spec.nRays; ++r) {
    const double cosT = cosMax + (1.0 - cosMax) * rng.nextDouble();
    const double sinT = std::sqrt(std::max(0.0, 1.0 - cosT * cosT));
    const double phi = 2.0 * M_PI * rng.nextDouble();
    const Vector dir = u * (sinT * std::cos(phi)) +
                       v * (sinT * std::sin(phi)) + w * cosT;
    sum += tracer.traceRay(spec.position, dir);
  }
  out.meanIntensity = sum / spec.nRays;
  out.flux = out.meanIntensity * out.solidAngle;
  return out;
}

}  // namespace rmcrt::core
