#pragma once

/// \file problems.h
/// Radiation problem definitions: analytic fields for the absorption
/// coefficient kappa(x), the emissive source sigmaT4/pi(x), and cell
/// classification. Includes the Burns & Christon benchmark — the problem
/// the paper scales (its refs [30], [3]; Uintah's RMCRT "benchmark 1") —
/// and a synthetic boiler-like field standing in for the ARCHES
/// combustion state per DESIGN.md §2.

#include <cmath>
#include <functional>
#include <memory>

#include "grid/level.h"
#include "grid/variable.h"

namespace rmcrt::core {

/// An analytic radiation problem on the unit-ish domain.
struct RadiationProblem {
  /// Absorption coefficient at a physical point [1/m].
  std::function<double(const Vector&)> abskg;
  /// sigma*T^4/pi at a physical point [W/m^2/sr].
  std::function<double(const Vector&)> sigmaT4OverPi;
  /// Wall emission term used when a ray leaves the domain (cold black
  /// walls emit zero).
  double wallSigmaT4OverPi = 0.0;
  double wallEmissivity = 1.0;
};

/// The Burns & Christon benchmark: domain [0,1]^3, cold black walls,
/// uniform emissive power sigmaT4 = 1 (so sigmaT4/pi = 1/pi), and
///
///   kappa(x,y,z) = 0.9 (1-2|x-1/2|)(1-2|y-1/2|)(1-2|z-1/2|) + 0.1
///
/// peaking at 1.0 in the center and falling to 0.1 at the corners.
inline RadiationProblem burnsChriston() {
  RadiationProblem p;
  p.abskg = [](const Vector& x) {
    return 0.9 * (1.0 - 2.0 * std::abs(x.x() - 0.5)) *
               (1.0 - 2.0 * std::abs(x.y() - 0.5)) *
               (1.0 - 2.0 * std::abs(x.z() - 0.5)) +
           0.1;
  };
  p.sigmaT4OverPi = [](const Vector&) { return 1.0 / M_PI; };
  p.wallSigmaT4OverPi = 0.0;
  p.wallEmissivity = 1.0;
  return p;
}

/// Uniform medium: constant kappa and source. In an optically thick
/// uniform medium far from walls, incoming intensity approaches the local
/// emission and divQ -> 0 — an analytic sanity anchor for the tracer.
inline RadiationProblem uniformMedium(double kappa, double sigmaT4) {
  RadiationProblem p;
  p.abskg = [kappa](const Vector&) { return kappa; };
  p.sigmaT4OverPi = [sigmaT4](const Vector&) { return sigmaT4 / M_PI; };
  p.wallSigmaT4OverPi = sigmaT4 / M_PI;  // hot walls at the same T
  return p;
}

/// A boiler-like field: hot gaussian flame core, cooler gas toward the
/// (cold, emissive) walls, soot-laden absorbing medium strongest in the
/// core. Stands in for the ARCHES LES temperature/absorption state the
/// production simulations would supply (loose CFD-radiation coupling).
inline RadiationProblem syntheticBoiler() {
  RadiationProblem p;
  constexpr double sigma = 5.67037e-8;
  constexpr double tCore = 1800.0;   // K, flame core
  constexpr double tGas = 800.0;     // K, bulk gas
  constexpr double tWall = 600.0;    // K, water walls
  p.abskg = [](const Vector& x) {
    const Vector d = x - Vector(0.5, 0.5, 0.4);
    const double r2 = d.dot(d);
    return 0.25 + 1.75 * std::exp(-r2 / 0.08);  // sooty core
  };
  p.sigmaT4OverPi = [=](const Vector& x) {
    const Vector d = x - Vector(0.5, 0.5, 0.4);
    const double r2 = d.dot(d);
    const double t = tGas + (tCore - tGas) * std::exp(-r2 / 0.05);
    return sigma * t * t * t * t / M_PI;
  };
  p.wallSigmaT4OverPi = sigma * tWall * tWall * tWall * tWall / M_PI;
  p.wallEmissivity = 0.8;
  return p;
}

/// Fill per-patch radiative property variables from an analytic problem
/// by sampling at cell centers (over the variable's full window, ghosts
/// included, so locally-initialized ghosts match remote data exactly).
inline void initializeProperties(const grid::Level& level,
                                 const RadiationProblem& prob,
                                 grid::CCVariable<double>& abskg,
                                 grid::CCVariable<double>& sigmaT4OverPi,
                                 grid::CCVariable<grid::CellType>& cellType) {
  for (const auto& c : abskg.window())
    abskg[c] = prob.abskg(level.cellCenter(c));
  for (const auto& c : sigmaT4OverPi.window())
    sigmaT4OverPi[c] = prob.sigmaT4OverPi(level.cellCenter(c));
  cellType.fill(grid::CellType::Flow);
}

}  // namespace rmcrt::core
