#pragma once

/// \file spectral.h
/// Spectral (non-gray) RMCRT — the paper's stated future work
/// (Section III-A: "Though a method for modeling spectral effects has
/// been considered, currently we are using a mean absorption coefficient
/// approximation ... Adding spectral frequencies to RMCRT would entail
/// adding a loop over wave-lengths, eta, and is part of future work").
///
/// Implemented here as a weighted-sum-of-gray-gases (WSGG) style band
/// model, the standard engineering treatment for combustion gases (and
/// the form Sun & Smith's full-spectrum k-distribution reduces to for a
/// small number of quadrature points): the spectrum is partitioned into
/// bands; band b carries a weight a_b (fraction of the Planck emissive
/// power, sum to 1) and an absorption-coefficient scale s_b applied to
/// the gray-mean field. Then
///
///   divQ(c) = sum_b  4*pi*kappa_b(c) * ( a_b*sigmaT4/pi(c) - meanI_b )
///
/// where each band is traced independently — the "loop over wavelengths"
/// around the existing gray kernel. A single band with a=1, s=1
/// reproduces the gray solver exactly (tested).

#include <vector>

#include "core/ray_tracer.h"
#include "grid/variable.h"

namespace rmcrt::core {

/// One spectral band of a weighted-sum-of-gray-gases model.
struct SpectralBand {
  double weight = 1.0;       ///< fraction of blackbody emissive power, a_b
  double kappaScale = 1.0;   ///< s_b multiplying the gray-mean kappa field
};

/// A band set; weights must sum to ~1.
using BandModel = std::vector<SpectralBand>;

/// A 3-band toy combustion-gas model: one nearly transparent window, one
/// moderate band, one strongly absorbing band (CO2/H2O-like), chosen so
/// the Planck-weighted mean equals the gray kappa
/// (sum a_b * s_b = 1).
inline BandModel threeband() {
  return {SpectralBand{0.45, 0.12},
          SpectralBand{0.35, 0.80},
          SpectralBand{0.20, 3.33}};
}

/// A single gray band (degenerates to the gray solver).
inline BandModel grayBand() { return {SpectralBand{1.0, 1.0}}; }

/// Planck-weighted mean absorption scale of a band model — equals the
/// effective gray kappa multiplier.
inline double planckMeanScale(const BandModel& bands) {
  double s = 0.0;
  for (const auto& b : bands) s += b.weight * b.kappaScale;
  return s;
}

/// Spectral RMCRT driver: wraps per-band Tracer instances over scaled
/// copies of the gray property fields and accumulates band divQ.
class SpectralTracer {
 public:
  /// \param levels gray trace levels (fields are the gray-mean kappa and
  ///               the TOTAL sigmaT4/pi); per-band scaled copies of kappa
  ///               are built internally.
  /// \param walls  gray wall properties; each band sees weight-scaled
  ///               wall emission.
  SpectralTracer(const std::vector<TraceLevel>& levels,
                 const WallProperties& walls, const TraceConfig& cfg,
                 BandModel bands);

  std::size_t numBands() const { return m_bands.size(); }

  /// divQ accumulated over all bands for every cell of \p cells
  /// (fine-level cells).
  void computeDivQ(const CellRange& cells,
                   MutableFieldView<double> divQ) const;

  /// Band-resolved mean incoming intensity for one cell (diagnostics).
  std::vector<double> bandIntensities(const IntVector& cell) const;

 private:
  struct BandData {
    SpectralBand band;
    // Owned scaled kappa fields per level (sigmaT4 and cellType are
    // shared with the gray views).
    std::vector<grid::CCVariable<double>> scaledKappa;
    std::unique_ptr<Tracer> tracer;
  };

  std::vector<TraceLevel> m_grayLevels;
  BandModel m_bands;
  std::vector<BandData> m_bandData;
};

}  // namespace rmcrt::core
