#pragma once

/// \file spectral.h
/// Spectral (non-gray) RMCRT — the paper's stated future work
/// (Section III-A: "Though a method for modeling spectral effects has
/// been considered, currently we are using a mean absorption coefficient
/// approximation ... Adding spectral frequencies to RMCRT would entail
/// adding a loop over wave-lengths, eta, and is part of future work").
///
/// Implemented here as a weighted-sum-of-gray-gases (WSGG) style band
/// model, the standard engineering treatment for combustion gases (and
/// the form Sun & Smith's full-spectrum k-distribution reduces to for a
/// small number of quadrature points): the spectrum is partitioned into
/// bands; band b carries a weight a_b (fraction of the Planck emissive
/// power, sum to 1) and an absorption-coefficient scale s_b applied to
/// the gray-mean field. Then
///
///   divQ(c) = sum_b  4*pi*kappa_b(c) * ( a_b*sigmaT4/pi(c) - meanI_b )
///
/// where each band is traced independently — the "loop over wavelengths"
/// around the existing gray kernel. A single band with a=1, s=1
/// reproduces the gray solver exactly (tested).

#include <memory>
#include <vector>

#include "core/ray_tracer.h"
#include "grid/variable.h"

namespace rmcrt::core {

/// One spectral band of a weighted-sum-of-gray-gases model.
struct SpectralBand {
  double weight = 1.0;       ///< fraction of blackbody emissive power, a_b
  double kappaScale = 1.0;   ///< s_b multiplying the gray-mean kappa field
};

/// A band set; weights must sum to ~1.
using BandModel = std::vector<SpectralBand>;

/// A 3-band toy combustion-gas model: one nearly transparent window, one
/// moderate band, one strongly absorbing band (CO2/H2O-like), chosen so
/// the Planck-weighted mean equals the gray kappa
/// (sum a_b * s_b = 1).
inline BandModel threeband() {
  return {SpectralBand{0.45, 0.12},
          SpectralBand{0.35, 0.80},
          SpectralBand{0.20, 3.33}};
}

/// A single gray band (degenerates to the gray solver).
inline BandModel grayBand() { return {SpectralBand{1.0, 1.0}}; }

/// Planck-weighted mean absorption scale of a band model — equals the
/// effective gray kappa multiplier.
inline double planckMeanScale(const BandModel& bands) {
  double s = 0.0;
  for (const auto& b : bands) s += b.weight * b.kappaScale;
  return s;
}

/// Spectral RMCRT driver — the band loop around the gray kernel, now a
/// first-class pipeline mode rather than a boiler-example curiosity.
///
/// Every band marches the SAME property records: kappa scaling moved
/// into the march itself (TraceConfig::kappaScale), so the constructor
/// packs ONE shared PackedCell record set that all band Tracers alias —
/// and on the simulated GPU all bands ride the same single device
/// upload. Band b's tracer computes q_b = 4*pi*(kappa*s_b) *
/// (sigmaT4/pi - meanI_b) against the UNSCALED source (intensity is
/// linear in the source), and accumulation applies the Planck weight:
/// divQ = sum_b a_b * q_b. A single band {a=1, s=1} is bitwise the gray
/// solver (IEEE: x*1.0 == x; tested).
class SpectralTracer {
 public:
  /// \param levels gray trace levels (fields are the gray-mean kappa and
  ///               the TOTAL sigmaT4/pi); levels that already carry
  ///               packed records (PackedLevelCache, the GPU level DB)
  ///               are shared as-is, others are packed once here.
  /// \param cfg    per-band configs inherit everything (including the
  ///               adaptive-ray knobs); band b multiplies kappaScale by
  ///               s_b and offsets the seed so bands decorrelate. Band 0
  ///               keeps cfg.seed exactly.
  SpectralTracer(const std::vector<TraceLevel>& levels,
                 const WallProperties& walls, const TraceConfig& cfg,
                 BandModel bands);

  std::size_t numBands() const { return m_bands.size(); }
  const BandModel& bands() const { return m_bands; }

  /// The band-b Tracer (flux/radiometer QoIs and tests reach through
  /// here; band 0 of grayBand() IS the gray tracer).
  const Tracer& bandTracer(std::size_t b) const { return *m_tracers[b]; }

  /// divQ accumulated over all bands for every cell of \p cells
  /// (fine-level cells), band-major: each band sweeps the whole range
  /// (fanning tiles across \p pool like the gray path) into a scratch
  /// field, then folds a_b * q_b into divQ. Publishes per-band
  /// tracer.band<k>.mseg_per_s gauges.
  void computeDivQ(const CellRange& cells, MutableFieldView<double> divQ,
                   ThreadPool* pool = nullptr) const;

  /// Serial band loop over one tile — the batch work unit behind
  /// Tracer::DivQTileJob::spectral, so the radiation service drains
  /// spectral scenes through the same computeDivQBatch as gray ones.
  /// Any tiling of a range reproduces computeDivQ over it bitwise.
  void computeDivQTile(const CellRange& tile,
                       MutableFieldView<double> divQ) const;

  /// Band-resolved mean incoming intensity for one cell (diagnostics).
  std::vector<double> bandIntensities(const IntVector& cell) const;

  /// Total cell crossings marched across all band tracers.
  std::uint64_t segmentCount() const;
  void resetSegmentCount();

 private:
  BandModel m_bands;
  /// Trace levels shared by every band; `packed` views alias
  /// m_sharedPacked for levels packed here (or the caller's records).
  std::vector<TraceLevel> m_levels;
  std::vector<PackedLevelField> m_sharedPacked;
  std::vector<std::unique_ptr<Tracer>> m_tracers;
};

}  // namespace rmcrt::core
