#pragma once

/// \file dom_solver.h
/// Discrete ordinates (S_N) baseline solver — the method the paper's
/// RMCRT replaces inside ARCHES (its Section II-A / III-A context: DOM
/// "is computationally expensive, involves multiple global, sparse linear
/// solves and presents challenges with the incorporation of scattering
/// physics", and suffers false scattering from spatial discretization).
///
/// Without scattering the RTE decouples per ordinate, so each ordinate is
/// solved exactly by one upwind finite-volume sweep (no Hypre needed —
/// source iteration degenerates to a single pass). Incident radiation
/// G = sum_m w_m I_m and divQ = 4*pi*kappa*(sigmaT4/pi - G/(4*pi)),
/// matching the tracer's sign convention.

#include <vector>

#include "core/field_view.h"
#include "core/ray_tracer.h"

namespace rmcrt::core {

/// One discrete ordinate: unit direction and quadrature weight.
struct Ordinate {
  Vector dir;
  double weight;  ///< weights sum to 4*pi over the full set
};

/// Level-symmetric quadrature sets.
/// \param n 2 (8 ordinates) or 4 (24 ordinates).
std::vector<Ordinate> levelSymmetricQuadrature(int n);

/// S_N solver over one uniform level.
class DomSolver {
 public:
  /// \param geom    level geometry (whole level)
  /// \param fields  radiative properties spanning geom.cells
  /// \param walls   boundary emission
  /// \param order   quadrature order (2 or 4)
  DomSolver(const LevelGeom& geom, const RadiationFieldsView& fields,
            const WallProperties& walls, int order = 4);

  /// Solve every ordinate by sweeping and write divQ over \p cells.
  void computeDivQ(const CellRange& cells,
                   MutableFieldView<double> divQ) const;

  /// Incident radiation G for one cell set (exposed for tests).
  void computeIncidentRadiation(grid::CCVariable<double>& G) const;

  int numOrdinates() const { return static_cast<int>(m_quad.size()); }

 private:
  void sweepOrdinate(const Ordinate& ord,
                     grid::CCVariable<double>& intensity) const;

  LevelGeom m_geom;
  RadiationFieldsView m_fields;
  WallProperties m_walls;
  std::vector<Ordinate> m_quad;
};

}  // namespace rmcrt::core
