#include "core/ray_tracer.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "core/spectral.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/trace_recorder.h"

namespace rmcrt::core {

namespace {

/// Infinity-safe division used to set up the DDA.
double safeDiv(double num, double den) {
  return den == 0.0 ? std::numeric_limits<double>::infinity() : num / den;
}

/// Registry references resolved once; per-tile bumps are single relaxed
/// atomic adds (same cost class as the existing m_segments flush).
MetricsCounter& tracerSegmentsCounter() {
  static MetricsCounter& c =
      MetricsRegistry::global().counter("tracer.segments");
  return c;
}
MetricsCounter& tracerRaysCounter() {
  static MetricsCounter& c = MetricsRegistry::global().counter("tracer.rays");
  return c;
}
/// Segments the adaptive controller avoided tracing versus the fixed
/// nDivQRays fan, estimated per tile from that tile's own mean
/// segments-per-ray (saved rays never marched, so their exact crossing
/// count is unknowable).
MetricsCounter& tracerSegmentsSavedCounter() {
  static MetricsCounter& c =
      MetricsRegistry::global().counter("tracer.segments_saved");
  return c;
}

}  // namespace

std::vector<CellRange> tileCells(const CellRange& cells,
                                 const IntVector& tileSize) {
  const IntVector ts = max(tileSize, IntVector(1));
  const IntVector lo = cells.low();
  const IntVector hi = cells.high();
  const IntVector sz = cells.size();
  const auto tilesAlong = [](int extent, int tile) {
    return (extent + tile - 1) / tile;
  };
  std::vector<CellRange> tiles;
  tiles.reserve(static_cast<std::size_t>(tilesAlong(sz.x(), ts.x())) *
                static_cast<std::size_t>(tilesAlong(sz.y(), ts.y())) *
                static_cast<std::size_t>(tilesAlong(sz.z(), ts.z())));
  for (int z = lo.z(); z < hi.z(); z += ts.z())
    for (int y = lo.y(); y < hi.y(); y += ts.y())
      for (int x = lo.x(); x < hi.x(); x += ts.x())
        tiles.push_back(
            CellRange(IntVector(x, y, z),
                      min(IntVector(x + ts.x(), y + ts.y(), z + ts.z()), hi)));
  return tiles;
}

IntVector adaptiveTileSize(const CellRange& cells, IntVector tileSize,
                           std::size_t workers) {
  IntVector ts = max(tileSize, IntVector(1));
  const auto tileCount = [&cells](const IntVector& t) {
    std::int64_t n = 1;
    for (int i = 0; i < 3; ++i)
      n *= (cells.size()[i] + t[i] - 1) / t[i];
    return n;
  };
  const std::int64_t want = static_cast<std::int64_t>(workers) * 4;
  while (tileCount(ts) < want) {
    // Halve the largest axis; stop once tiles are already small.
    int axis = 0;
    if (ts[1] > ts[axis]) axis = 1;
    if (ts[2] > ts[axis]) axis = 2;
    const std::int64_t volume =
        static_cast<std::int64_t>(ts[0]) * ts[1] * ts[2];
    if (ts[axis] <= 2 || volume <= 64) break;
    ts[axis] = (ts[axis] + 1) / 2;
  }
  return ts;
}

bool Tracer::simdSupported() {
#if RMCRT_SIMD_X86
  static const bool ok = [] {
    // RMCRT_NO_SIMD=<non-zero> forces the scalar dispatch — the CI
    // no-AVX2 fallback job sets it to exercise this path on AVX2 hosts.
    const char* e = std::getenv("RMCRT_NO_SIMD");
    if (e != nullptr && e[0] != '\0' && e[0] != '0') return false;
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return ok;
#else
  return false;
#endif
}

Tracer::Tracer(std::vector<TraceLevel> levels, const WallProperties& walls,
               const TraceConfig& cfg)
    : m_levels(std::move(levels)), m_walls(walls), m_cfg(cfg) {
  if (m_cfg.nDivQRays <= 0)
    throw std::invalid_argument(
        "TraceConfig::nDivQRays must be positive (got " +
        std::to_string(m_cfg.nDivQRays) +
        "): meanIncomingIntensity divides by it, so divQ would be NaN");
  if (m_cfg.nFluxRays <= 0)
    throw std::invalid_argument(
        "TraceConfig::nFluxRays must be positive (got " +
        std::to_string(m_cfg.nFluxRays) +
        "): boundaryFlux divides by it, so the flux would be NaN");
  if (m_cfg.adaptiveRays) {
    if (m_cfg.nPilotRays <= 0)
      throw std::invalid_argument(
          "TraceConfig::nPilotRays must be positive (got " +
          std::to_string(m_cfg.nPilotRays) +
          ") when adaptiveRays is set: the pilot mean divides by it");
    if (!(m_cfg.errorTarget > 0.0))
      throw std::invalid_argument(
          "TraceConfig::errorTarget must be positive (got " +
          std::to_string(m_cfg.errorTarget) +
          ") when adaptiveRays is set: the budget rule divides by it");
    if (m_cfg.nMaxRays < 0)
      throw std::invalid_argument(
          "TraceConfig::nMaxRays must be >= 0 (got " +
          std::to_string(m_cfg.nMaxRays) +
          "): 0 means cap budgets at nDivQRays");
  }
  if (!m_cfg.usePackedFields) {
    // Legacy layout requested: drop packed views wherever the separate
    // property views can serve instead. Packed-only levels (the GPU
    // kernel's device records) keep marching packed.
    for (TraceLevel& L : m_levels)
      if (L.fields.abskg.valid()) L.packed = PackedFieldView();
    return;
  }
  m_ownedPacked.reserve(m_levels.size());
  for (TraceLevel& L : m_levels) {
    if (L.packed.valid() || !L.fields.abskg.valid()) continue;
    m_ownedPacked.emplace_back(L.fields);
    L.packed = m_ownedPacked.back().view();
  }
  if (m_cfg.useSimd && !m_levels.empty() && m_levels.front().packed.valid()) {
    // One pass over level 0's records so the packet march can skip the
    // cellType gather entirely in wall-free domains.
    const PackedFieldView& pf = m_levels.front().packed;
    const std::int64_t nRec = pf.window().volume();
    const PackedCell* rec = pf.data();
    bool walls = false;
    for (std::int64_t i = 0; i < nRec && !walls; ++i)
      walls = rec[i].cellType == PackedCell::kWall;
    m_level0HasWalls = walls;
  }
}

bool Tracer::marchLevel(std::size_t li, Vector& pos, const Vector& dir,
                        double& sumI, double& transmissivity,
                        std::uint64_t& segments) const {
  return m_levels[li].packed.valid()
             ? marchLevelPacked(li, pos, dir, sumI, transmissivity, segments)
             : marchLevelLegacy(li, pos, dir, sumI, transmissivity, segments);
}

bool Tracer::marchLevelPacked(std::size_t li, Vector& pos, const Vector& dir,
                              double& sumI, double& transmissivity,
                              std::uint64_t& segments) const {
  const TraceLevel& L = m_levels[li];
  const LevelGeom& g = L.geom;

  IntVector start = g.cellAt(pos);
  // Clamp marginal float error at the handoff point.
  start = max(min(start, L.allowed.high() - IntVector(1)), L.allowed.low());

  // Amanatides-Woo setup: distance along the ray to the next cell face in
  // each axis (tMax) and per-cell crossing distances (tDelta). Everything
  // the segment loop touches lives in small stack arrays (the compiler
  // keeps the FP state in registers) rather than IntVector/Vector.
  int cur[3], step[3], lo[3], hi[3];
  double tMax[3], tDelta[3];
  for (int i = 0; i < 3; ++i) {
    cur[i] = start[i];
    step[i] = dir[i] >= 0.0 ? 1 : -1;
    lo[i] = L.allowed.low()[i];
    hi[i] = L.allowed.high()[i];
    tDelta[i] = safeDiv(g.dx[i], std::abs(dir[i]));
    const double planeCoord =
        g.physLow[i] +
        (cur[i] - g.cells.low()[i] + (dir[i] >= 0.0 ? 1 : 0)) * g.dx[i];
    tMax[i] = safeDiv(planeCoord - pos[i], dir[i]);
    if (tMax[i] < 0.0) tMax[i] = 0.0;  // float slop at the boundary
  }

  // Incremental-stride DDA state: resolve the 3-D index once, then bump
  // the record pointer by the pre-signed axis stride on each crossing.
  const PackedFieldView& pf = L.packed;
  const PackedCell* cell = &pf[start];
  std::int64_t stepOffset[3];
  for (int i = 0; i < 3; ++i) stepOffset[i] = pf.stride(i) * step[i];

  double tCur = 0.0;
  const double threshold = m_cfg.threshold;
  // Band scale on kappa (1.0 in gray mode — bitwise neutral, IEEE
  // x*1.0 == x), hoisted so the march loop never reloads the config.
  const double kappaScale = m_cfg.kappaScale;

  for (;;) {
    const PackedCell& rec = *cell;
    // A wall cell absorbs the ray: add its emission seen through the
    // accumulated transmissivity. Wall-ness is baked into the record, so
    // there is no per-segment field-validity branch.
    if (rec.cellType == PackedCell::kWall) [[unlikely]] {
      sumI += m_walls.emissivity * rec.sigmaT4OverPi * transmissivity;
      return true;
    }

    // Branchless min-axis selection. The stepped axis is data-dependent
    // and close to uniformly random, so the naive two-compare `if` chain
    // mispredicts on most crossings — selecting via conditional moves
    // costs a couple of cmovs instead of a ~15-cycle flush. The
    // tie-breaking (x wins over y wins over z) and every FP value are
    // identical to the legacy march.
    const double t0 = tMax[0], t1 = tMax[1], t2 = tMax[2];
    const int yBeforeX = t1 < t0;
    const double m01 = t1 < t0 ? t1 : t0;    // minsd
    const int zFirst = t2 < m01;
    const double tNext = t2 < m01 ? t2 : m01;  // minsd
    // axis = zFirst ? 2 : yBeforeX, written as arithmetic so the
    // compiler cannot re-materialize the compare as a branch.
    const int axis = yBeforeX + ((2 - yBeforeX) & -zFirst);
    const double segLen = tNext - tCur;

    // Absorb + emit along the segment (paper Eq. 2 without scattering):
    // one cache-line-local record load instead of three strided array
    // reads; the FP sequence matches the legacy path exactly.
    const double expSeg = std::exp(-(rec.abskg * kappaScale) * segLen);
    sumI += rec.sigmaT4OverPi * (1.0 - expSeg) * transmissivity;
    transmissivity *= expSeg;
    // Zero-length crossings (the float-slop tMax clamp puts the first
    // face at t=0 when a ray starts exactly on it; axis ties produce
    // them mid-march at corners) contribute nothing — exp(0) is exactly
    // 1 — so they must not count as marched segments or every Mseg/s
    // figure inflates. Branchless: the FP work above already ran and is
    // a bitwise no-op for segLen == 0.
    segments += (segLen != 0.0);

    if (transmissivity < threshold) return true;  // extinguished

    // Advance to the next cell: tMax[axis] == tNext here, so the += of
    // the legacy path is the same value as this store.
    tCur = tNext;
    const int stepped = cur[axis] + step[axis];
    cur[axis] = stepped;
    tMax[axis] = tNext + tDelta[axis];

    // Only the stepped axis can leave the allowed box, so test that one
    // component instead of the full 3-axis containment check.
    if (stepped < lo[axis] || stepped >= hi[axis]) [[unlikely]] {
      const IntVector curV(cur[0], cur[1], cur[2]);
      if (!g.cells.contains(curV)) {
        // Left the physical domain: the boundary is a wall.
        sumI += m_walls.emissivity * m_walls.sigmaT4OverPi * transmissivity;
        return true;
      }
      // Left the region of interest but not the domain: continue on the
      // next coarser level from the crossing position.
      if (li + 1 >= m_levels.size()) {
        sumI += m_walls.emissivity * m_walls.sigmaT4OverPi * transmissivity;
        return true;
      }
      pos = pos + dir * tCur;
      return false;
    }
    cell += stepOffset[axis];
  }
}

bool Tracer::marchLevelLegacy(std::size_t li, Vector& pos, const Vector& dir,
                              double& sumI, double& transmissivity,
                              std::uint64_t& segments) const {
  const TraceLevel& L = m_levels[li];
  const LevelGeom& g = L.geom;

  IntVector cur = g.cellAt(pos);
  // Clamp marginal float error at the handoff point.
  cur = max(min(cur, L.allowed.high() - IntVector(1)), L.allowed.low());

  // Amanatides-Woo setup: distance along the ray to the next cell face in
  // each axis (tMax) and per-cell crossing distances (tDelta).
  IntVector step;
  Vector tMax, tDelta;
  for (int i = 0; i < 3; ++i) {
    step[i] = dir[i] >= 0.0 ? 1 : -1;
    tDelta[i] = safeDiv(g.dx[i], std::abs(dir[i]));
    const double planeCoord =
        g.physLow[i] +
        (cur[i] - g.cells.low()[i] + (dir[i] >= 0.0 ? 1 : 0)) * g.dx[i];
    tMax[i] = safeDiv(planeCoord - pos[i], dir[i]);
    if (tMax[i] < 0.0) tMax[i] = 0.0;  // float slop at the boundary
  }

  double tCur = 0.0;
  const double threshold = m_cfg.threshold;
  const double kappaScale = m_cfg.kappaScale;

  for (;;) {
    // A wall cell absorbs the ray: add its emission seen through the
    // accumulated transmissivity.
    if (L.fields.cellType.valid() &&
        L.fields.cellType[cur] == grid::CellType::Wall) {
      sumI += m_walls.emissivity * L.fields.sigmaT4OverPi[cur] *
              transmissivity;
      return true;
    }

    // Segment length inside the current cell.
    int axis = 0;
    if (tMax.y() < tMax[axis]) axis = 1;
    if (tMax.z() < tMax[axis]) axis = 2;
    const double segLen = tMax[axis] - tCur;

    // Absorb + emit along the segment (paper Eq. 2 without scattering):
    // contribution = sigmaT4/pi * (1 - e^{-kappa ds}) attenuated by the
    // transmissivity accumulated so far.
    const double kappa = L.fields.abskg[cur] * kappaScale;
    const double expSeg = std::exp(-kappa * segLen);
    sumI += L.fields.sigmaT4OverPi[cur] * (1.0 - expSeg) * transmissivity;
    transmissivity *= expSeg;
    // Skip zero-length crossings in the count (see the packed march);
    // scalar, legacy and SIMD paths all apply the same rule.
    segments += (segLen != 0.0);

    if (transmissivity < threshold) return true;  // extinguished

    // Advance to the next cell.
    tCur = tMax[axis];
    cur[axis] += step[axis];
    tMax[axis] += tDelta[axis];

    if (!L.allowed.contains(cur)) {
      if (!g.cells.contains(cur)) {
        // Left the physical domain: the boundary is a wall.
        sumI += m_walls.emissivity * m_walls.sigmaT4OverPi * transmissivity;
        return true;
      }
      // Left the region of interest but not the domain: continue on the
      // next coarser level from the crossing position.
      if (li + 1 >= m_levels.size()) {
        // No coarser level (single-level tracer whose allowed box is the
        // whole level never reaches here; a restricted single-level ROI
        // treats the ROI edge as domain exit).
        sumI += m_walls.emissivity * m_walls.sigmaT4OverPi * transmissivity;
        return true;
      }
      pos = pos + dir * tCur;
      return false;
    }
  }
}

double Tracer::traceRay(Vector origin, Vector dir, std::size_t startLevel,
                        std::uint64_t& segments) const {
  double sumI = 0.0;
  double transmissivity = 1.0;
  Vector pos = origin;
  for (std::size_t li = startLevel; li < m_levels.size(); ++li) {
    if (marchLevel(li, pos, dir, sumI, transmissivity, segments)) break;
  }
  return sumI;
}

double Tracer::traceRay(Vector origin, Vector dir,
                        std::size_t startLevel) const {
  std::uint64_t segments = 0;
  const double sumI = traceRay(origin, dir, startLevel, segments);
  flushSegments(segments);
  return sumI;
}

void Tracer::finishRayCoarse(Vector pos, const Vector& dir, double& sumI,
                             double& transmissivity,
                             std::uint64_t& segments) const {
  for (std::size_t li = 1; li < m_levels.size(); ++li) {
    if (marchLevel(li, pos, dir, sumI, transmissivity, segments)) break;
  }
}

void Tracer::traceRaysScalar(int n, const Vector* origins,
                             const Vector* dirs, double* out,
                             std::uint64_t& segments) const {
  for (int i = 0; i < n; ++i)
    out[i] = traceRay(origins[i], dirs[i], 0, segments);
}

void Tracer::traceRays(int n, const Vector* origins, const Vector* dirs,
                       double* out) const {
  if (n <= 0) return;
  std::uint64_t segments = 0;
  if (simdActive()) {
    traceRaysSimd(n, origins, dirs, out, segments);
  } else {
    traceRaysScalar(n, origins, dirs, out, segments);
  }
  flushSegments(segments);
}

void Tracer::flushSegments(std::uint64_t n) const {
  m_segments.fetch_add(n, std::memory_order_relaxed);
  tracerSegmentsCounter().add(n);
}

double Tracer::meanIncomingIntensity(const IntVector& cell,
                                     std::uint64_t& segments) const {
  const LevelGeom& g = m_levels.front().geom;
  double sum = 0.0;
  for (int r = 0; r < m_cfg.nDivQRays; ++r) {
    Rng rng(m_cfg.seed, cell, static_cast<std::uint32_t>(r));
    Vector origin;
    if (m_cfg.jitterRayOrigin) {
      const Vector lo = g.cellLowCorner(cell);
      origin = lo + Vector(rng.nextDouble(), rng.nextDouble(),
                           rng.nextDouble()) *
                        g.dx;
    } else {
      origin = g.cellCenter(cell);
    }
    const Vector dir = isotropicDirection(rng);
    sum += traceRay(origin, dir, 0, segments);
  }
  return sum / static_cast<double>(m_cfg.nDivQRays);
}

double Tracer::meanIncomingIntensitySimd(const IntVector& cell,
                                         std::vector<Vector>& origins,
                                         std::vector<Vector>& dirs,
                                         std::vector<double>& intensities,
                                         std::uint64_t& segments) const {
  const LevelGeom& g = m_levels.front().geom;
  const int n = m_cfg.nDivQRays;
  origins.resize(static_cast<std::size_t>(n));
  dirs.resize(static_cast<std::size_t>(n));
  intensities.resize(static_cast<std::size_t>(n));
  // Identical RNG consumption to the scalar loop: the ray geometry is
  // bitwise the same, only the march arithmetic differs.
  for (int r = 0; r < n; ++r) {
    Rng rng(m_cfg.seed, cell, static_cast<std::uint32_t>(r));
    Vector origin;
    if (m_cfg.jitterRayOrigin) {
      const Vector lo = g.cellLowCorner(cell);
      origin = lo + Vector(rng.nextDouble(), rng.nextDouble(),
                           rng.nextDouble()) *
                        g.dx;
    } else {
      origin = g.cellCenter(cell);
    }
    origins[static_cast<std::size_t>(r)] = origin;
    dirs[static_cast<std::size_t>(r)] = isotropicDirection(rng);
  }
  traceRaysSimd(n, origins.data(), dirs.data(), intensities.data(),
                segments);
  // Sum in ray order — the same reduction order as the scalar loop.
  double sum = 0.0;
  for (int r = 0; r < n; ++r) sum += intensities[static_cast<std::size_t>(r)];
  return sum / static_cast<double>(m_cfg.nDivQRays);
}

double Tracer::meanIncomingIntensity(const IntVector& cell) const {
  std::uint64_t segments = 0;
  double meanI;
  if (simdActive()) {
    std::vector<Vector> origins, dirs;
    std::vector<double> intensities;
    meanI = meanIncomingIntensitySimd(cell, origins, dirs, intensities,
                                      segments);
  } else {
    meanI = meanIncomingIntensity(cell, segments);
  }
  flushSegments(segments);
  return meanI;
}

void Tracer::computeDivQTile(const CellRange& tile,
                             MutableFieldView<double> divQ) const {
  RMCRT_TRACE_SPAN("tracer", "divQ_tile");
  if (m_cfg.adaptiveRays) {
    computeDivQTileAdaptive(tile, divQ);
    return;
  }
  const TraceLevel& L0 = m_levels.front();
  const double kappaScale = m_cfg.kappaScale;
  std::uint64_t segments = 0;
  if (simdActive()) {
    // Packet path: per-cell ray bundles through marchPacket8. Scratch is
    // reused across the tile so the march loop performs no allocation
    // after the first cell.
    std::vector<Vector> origins, dirs;
    std::vector<double> intensities;
    for (const IntVector& c : tile) {
      const double meanI = meanIncomingIntensitySimd(c, origins, dirs,
                                                     intensities, segments);
      const PackedCell& rec = L0.packed[c];
      divQ[c] = 4.0 * M_PI * (rec.abskg * kappaScale) *
                (rec.sigmaT4OverPi - meanI);
    }
  } else if (L0.packed.valid()) {
    for (const IntVector& c : tile) {
      const double meanI = meanIncomingIntensity(c, segments);
      const PackedCell& rec = L0.packed[c];
      divQ[c] = 4.0 * M_PI * (rec.abskg * kappaScale) *
                (rec.sigmaT4OverPi - meanI);
    }
  } else {
    const RadiationFieldsView& f = L0.fields;
    for (const IntVector& c : tile) {
      const double meanI = meanIncomingIntensity(c, segments);
      divQ[c] = 4.0 * M_PI * (f.abskg[c] * kappaScale) *
                (f.sigmaT4OverPi[c] - meanI);
    }
  }
  flushSegments(segments);
  const std::uint64_t nCells = static_cast<std::uint64_t>(tile.volume());
  const std::uint64_t rays =
      nCells * static_cast<std::uint64_t>(m_cfg.nDivQRays);
  tracerRaysCounter().add(rays);
  m_raysTraced.fetch_add(rays, std::memory_order_relaxed);
  m_cellsTraced.fetch_add(nCells, std::memory_order_relaxed);
  const std::uint64_t fan = static_cast<std::uint64_t>(m_cfg.nDivQRays);
  std::uint64_t prev = m_maxBudget.load(std::memory_order_relaxed);
  while (fan > prev && !m_maxBudget.compare_exchange_weak(
                           prev, fan, std::memory_order_relaxed)) {
  }
}

int Tracer::adaptiveBudget(double pilotMean, double pilotStddev,
                           double sigmaT4OverPi) const {
  const int cap = m_cfg.nMaxRays > 0 ? m_cfg.nMaxRays : m_cfg.nDivQRays;
  const int pilot = std::min(m_cfg.nPilotRays, cap);
  if (pilotStddev <= 0.0) return pilot;  // uniform pilot: nothing to refine
  // n rays shrink the standard error to s/sqrt(n); require it below
  // errorTarget * |difference| where the difference is exactly the
  // (source - meanI) factor divQ multiplies — a cell in near-equilibrium
  // saturates at the cap rather than divide by ~0.
  const double denom =
      m_cfg.errorTarget * std::abs(sigmaT4OverPi - pilotMean);
  if (denom <= 0.0) return cap;
  const double ratio = pilotStddev / denom;
  const double need = std::ceil(ratio * ratio);
  if (!(need < static_cast<double>(cap))) return cap;  // also inf/NaN
  return std::max(pilot, static_cast<int>(need));
}

void Tracer::traceCellRays(const IntVector& cell, int rBegin, int rEnd,
                           double& sum, std::vector<Vector>& origins,
                           std::vector<Vector>& dirs,
                           std::vector<double>& intensities,
                           std::uint64_t& segments) const {
  const int n = rEnd - rBegin;
  if (n <= 0) {
    intensities.clear();
    return;
  }
  const LevelGeom& g = m_levels.front().geom;
  origins.resize(static_cast<std::size_t>(n));
  dirs.resize(static_cast<std::size_t>(n));
  intensities.resize(static_cast<std::size_t>(n));
  // Ray r of ANY pass draws from Rng(seed, cell, r) — the same stream
  // the fixed fan consumes for its ray r, so the pilot is a prefix of
  // the fixed fan and the top-up continues it exactly.
  for (int r = rBegin; r < rEnd; ++r) {
    Rng rng(m_cfg.seed, cell, static_cast<std::uint32_t>(r));
    Vector origin;
    if (m_cfg.jitterRayOrigin) {
      const Vector lo = g.cellLowCorner(cell);
      origin = lo + Vector(rng.nextDouble(), rng.nextDouble(),
                           rng.nextDouble()) *
                        g.dx;
    } else {
      origin = g.cellCenter(cell);
    }
    const std::size_t i = static_cast<std::size_t>(r - rBegin);
    origins[i] = origin;
    dirs[i] = isotropicDirection(rng);
  }
  if (simdActive()) {
    // Variable-size bundles feed the same SetupQueue lane-refill path as
    // the fixed fan; each lane's intensity depends only on its own ray,
    // so bundle composition never changes per-ray values.
    traceRaysSimd(n, origins.data(), dirs.data(), intensities.data(),
                  segments);
  } else {
    for (int i = 0; i < n; ++i)
      intensities[static_cast<std::size_t>(i)] =
          traceRay(origins[static_cast<std::size_t>(i)],
                   dirs[static_cast<std::size_t>(i)], 0, segments);
  }
  // Reduce in ray order — concatenated with the pilot pass this is the
  // fixed fan's exact left-to-right sum.
  for (int i = 0; i < n; ++i) sum += intensities[static_cast<std::size_t>(i)];
}

void Tracer::computeDivQTileAdaptive(const CellRange& tile,
                                     MutableFieldView<double> divQ) const {
  const TraceLevel& L0 = m_levels.front();
  const int cap = m_cfg.nMaxRays > 0 ? m_cfg.nMaxRays : m_cfg.nDivQRays;
  const int pilot = std::min(m_cfg.nPilotRays, cap);

  struct CellState {
    double sum = 0.0;  // intensity sum over the rays traced so far
    int budget = 0;    // total rays granted to this cell
    double abskg = 0.0;
    double sigmaT4OverPi = 0.0;
  };
  std::vector<CellState> states;
  states.reserve(static_cast<std::size_t>(tile.volume()));

  std::uint64_t segments = 0;
  std::vector<Vector> origins, dirs;
  std::vector<double> intensities;

  {
    // Pass 1: pilot fan + streaming variance -> deterministic budget.
    // The budget is a function of (seed, cell) alone, so any tiling or
    // thread schedule grants identical budgets.
    RMCRT_TRACE_SPAN("tracer", "adaptive_pilot");
    for (const IntVector& c : tile) {
      CellState cs;
      if (L0.packed.valid()) {
        const PackedCell& rec = L0.packed[c];
        cs.abskg = rec.abskg;
        cs.sigmaT4OverPi = rec.sigmaT4OverPi;
      } else {
        cs.abskg = L0.fields.abskg[c];
        cs.sigmaT4OverPi = L0.fields.sigmaT4OverPi[c];
      }
      traceCellRays(c, 0, pilot, cs.sum, origins, dirs, intensities,
                    segments);
      RunningStats stats;
      for (const double I : intensities) stats.add(I);
      cs.budget = adaptiveBudget(stats.mean(), stats.stddev(),
                                 cs.sigmaT4OverPi);
      states.push_back(cs);
    }
  }

  std::uint64_t raysTraced = 0;
  std::uint64_t tileMaxBudget = 0;
  {
    // Pass 2: top up only where the pilot missed the error target,
    // appending to the same running sum so a cell whose budget reaches
    // nDivQRays reproduces the fixed fan's reduction bitwise.
    RMCRT_TRACE_SPAN("tracer", "adaptive_topup");
    std::size_t i = 0;
    for (const IntVector& c : tile) {
      CellState& cs = states[i++];
      if (cs.budget > pilot)
        traceCellRays(c, pilot, cs.budget, cs.sum, origins, dirs,
                      intensities, segments);
      const double meanI = cs.sum / static_cast<double>(cs.budget);
      divQ[c] = 4.0 * M_PI * (cs.abskg * m_cfg.kappaScale) *
                (cs.sigmaT4OverPi - meanI);
      raysTraced += static_cast<std::uint64_t>(cs.budget);
      tileMaxBudget =
          std::max(tileMaxBudget, static_cast<std::uint64_t>(cs.budget));
    }
  }

  flushSegments(segments);
  tracerRaysCounter().add(raysTraced);
  const std::uint64_t nCells = static_cast<std::uint64_t>(tile.volume());
  m_raysTraced.fetch_add(raysTraced, std::memory_order_relaxed);
  m_cellsTraced.fetch_add(nCells, std::memory_order_relaxed);
  std::uint64_t prev = m_maxBudget.load(std::memory_order_relaxed);
  while (tileMaxBudget > prev &&
         !m_maxBudget.compare_exchange_weak(prev, tileMaxBudget,
                                            std::memory_order_relaxed)) {
  }
  // Work avoided vs the fixed fan, estimated from this tile's own mean
  // segments-per-ray (untraced rays have no exact crossing count).
  const std::uint64_t fixedRays =
      nCells * static_cast<std::uint64_t>(m_cfg.nDivQRays);
  if (raysTraced > 0 && fixedRays > raysTraced) {
    const double perRay =
        static_cast<double>(segments) / static_cast<double>(raysTraced);
    tracerSegmentsSavedCounter().add(static_cast<std::uint64_t>(
        static_cast<double>(fixedRays - raysTraced) * perRay));
  }
}

void Tracer::publishRayGauges() const {
  const std::uint64_t cells = m_cellsTraced.load(std::memory_order_relaxed);
  if (cells == 0) return;
  auto& reg = MetricsRegistry::global();
  reg.setGauge("tracer.rays_per_cell_mean",
               static_cast<double>(m_raysTraced.load(
                   std::memory_order_relaxed)) /
                   static_cast<double>(cells));
  reg.setGauge("tracer.rays_per_cell_max",
               static_cast<double>(
                   m_maxBudget.load(std::memory_order_relaxed)));
}

void Tracer::computeDivQ(const CellRange& cells,
                         MutableFieldView<double> divQ,
                         ThreadPool* pool) const {
  RMCRT_TRACE_SPAN("tracer", "computeDivQ");
  if (pool == nullptr || pool->size() <= 1) {
    computeDivQTile(cells, divQ);
    publishRayGauges();
    return;
  }
  // Adapt the tile size to the pool so small sweeps don't undersubscribe
  // it: the default 8^3 tiling of a small range can produce fewer tiles
  // than parallelFor wants chunks (~4 per worker), leaving workers idle.
  const std::vector<CellRange> tiles = tileCells(
      cells, adaptiveTileSize(cells, m_cfg.tileSize, pool->size()));
  std::vector<DivQTileJob> jobs;
  jobs.reserve(tiles.size());
  for (const CellRange& tile : tiles)
    jobs.push_back(DivQTileJob{this, tile, divQ});
  computeDivQBatch(jobs, pool);
}

void Tracer::computeDivQBatch(const std::vector<DivQTileJob>& jobs,
                              ThreadPool* pool) {
  RMCRT_TRACE_SPAN("tracer", "computeDivQBatch");
  // A job carrying a band pipeline runs through it; gray jobs keep the
  // direct tracer path. Both are per-tile serial work units, so one
  // drain can mix gray and spectral scenes.
  const auto run = [](const DivQTileJob& j) {
    if (j.spectral != nullptr)
      j.spectral->computeDivQTile(j.tile, j.sink);
    else
      j.tracer->computeDivQTile(j.tile, j.sink);
  };
  if (pool == nullptr || pool->size() <= 1) {
    for (const DivQTileJob& j : jobs) run(j);
  } else {
    pool->parallelFor(0, static_cast<std::int64_t>(jobs.size()),
                      [&](std::int64_t i) {
                        run(jobs[static_cast<std::size_t>(i)]);
                      });
  }
  // Rays-per-cell gauges: publish once per drain for each distinct gray
  // tracer (never per tile, so concurrent tiles cannot race the gauge).
  std::vector<const Tracer*> seen;
  for (const DivQTileJob& j : jobs) {
    if (j.tracer == nullptr || j.spectral != nullptr) continue;
    if (std::find(seen.begin(), seen.end(), j.tracer) == seen.end()) {
      seen.push_back(j.tracer);
      j.tracer->publishRayGauges();
    }
  }
}

double Tracer::boundaryFlux(const IntVector& cell, const IntVector& face,
                            int nRays, ThreadPool* pool) const {
  RMCRT_TRACE_SPAN("tracer", "boundaryFlux");
  // The flux fan has its own knob: 0 (the default argument) means
  // TraceConfig::nFluxRays, validated positive at construction.
  if (nRays <= 0) nRays = m_cfg.nFluxRays;
  tracerRaysCounter().add(static_cast<std::uint64_t>(nRays));
  // Incident flux on the face = integral over the inward hemisphere of
  // I(s) |s . n| dOmega. Monte Carlo with directions sampled
  // cosine-weighted about the inward normal -> flux = pi * mean(I).
  const LevelGeom& g = m_levels.front().geom;
  const Vector inward = -Vector(face).normalized();
  // Build an orthonormal basis around the inward normal.
  const Vector ref =
      std::abs(inward.x()) < 0.9 ? Vector(1, 0, 0) : Vector(0, 1, 0);
  Vector u = Vector(inward.y() * ref.z() - inward.z() * ref.y(),
                    inward.z() * ref.x() - inward.x() * ref.z(),
                    inward.x() * ref.y() - inward.y() * ref.x())
                 .normalized();
  Vector v(inward.y() * u.z() - inward.z() * u.y(),
           inward.z() * u.x() - inward.x() * u.z(),
           inward.x() * u.y() - inward.y() * u.x());

  // Ray origins sit on the face; nudge inside by a tiny offset so the
  // marcher starts in the boundary cell.
  const Vector faceCenter =
      g.cellCenter(cell) + Vector(face) * (g.dx * 0.5) -
      Vector(face) * (g.dx.minComponent() * 1e-9);

  auto sampleRay = [&](int r, std::uint64_t& segments) {
    Rng rng(m_cfg.seed ^ 0xF00DULL, cell, static_cast<std::uint32_t>(r));
    // Jitter the origin uniformly over the face — the cosine-weighted
    // directions sample the hemisphere, the jitter samples the face area,
    // matching the divQ estimator. The normal-axis coordinate stays on
    // the (nudged) face plane.
    Vector origin = faceCenter;
    if (m_cfg.jitterRayOrigin) {
      for (int i = 0; i < 3; ++i)
        if (face[i] == 0) origin[i] += (rng.nextDouble() - 0.5) * g.dx[i];
    }
    // Cosine-weighted hemisphere sample.
    const double r1 = rng.nextDouble(), r2 = rng.nextDouble();
    const double sinT = std::sqrt(r1);
    const double cosT = std::sqrt(1.0 - r1);
    const double phi = 2.0 * M_PI * r2;
    const Vector dir =
        u * (sinT * std::cos(phi)) + v * (sinT * std::sin(phi)) +
        inward * cosT;
    return traceRay(origin, dir, 0, segments);
  };

  double sum = 0.0;
  if (pool != nullptr && pool->size() > 1 && nRays > 1) {
    // Per-ray intensities land in a vector and are reduced in ray order
    // below, so the sum is bitwise identical to the serial loop.
    std::vector<double> intensity(static_cast<std::size_t>(nRays), 0.0);
    pool->parallelFor(0, nRays, [&](std::int64_t r) {
      std::uint64_t segments = 0;
      intensity[static_cast<std::size_t>(r)] =
          sampleRay(static_cast<int>(r), segments);
      flushSegments(segments);
    });
    for (int r = 0; r < nRays; ++r)
      sum += intensity[static_cast<std::size_t>(r)];
  } else {
    std::uint64_t segments = 0;
    for (int r = 0; r < nRays; ++r) sum += sampleRay(r, segments);
    flushSegments(segments);
  }
  return M_PI * sum / static_cast<double>(nRays);
}

}  // namespace rmcrt::core
