#include "core/spectral.h"

#include <cassert>
#include <cmath>

namespace rmcrt::core {

SpectralTracer::SpectralTracer(const std::vector<TraceLevel>& levels,
                               const WallProperties& walls,
                               const TraceConfig& cfg, BandModel bands)
    : m_grayLevels(levels), m_bands(std::move(bands)) {
  assert(!m_bands.empty());
  m_bandData.reserve(m_bands.size());
  for (std::size_t b = 0; b < m_bands.size(); ++b) {
    BandData data;
    data.band = m_bands[b];
    // Scaled kappa per level; sources and cell types are shared. Since
    // the traced intensity is linear in the emissive source, each band
    // is traced against the UNSCALED source and the band weight is
    // applied at accumulation time (see computeDivQ).
    std::vector<TraceLevel> bandLevels = m_grayLevels;
    data.scaledKappa.reserve(levels.size());
    for (std::size_t l = 0; l < levels.size(); ++l) {
      const FieldView<double>& gray = levels[l].fields.abskg;
      grid::CCVariable<double> scaled(gray.window(), 0.0);
      for (const IntVector& c : gray.window())
        scaled[c] = gray[c] * data.band.kappaScale;
      data.scaledKappa.push_back(std::move(scaled));
      bandLevels[l].fields.abskg =
          FieldView<double>::fromHost(data.scaledKappa.back());
    }
    // Per-band RNG decorrelation: offset the seed so bands don't share
    // sample paths (a correlated estimator would hide band differences).
    TraceConfig bandCfg = cfg;
    bandCfg.seed = cfg.seed + 0x5370656Bull * b;  // band 0 keeps cfg.seed
    data.tracer = std::make_unique<Tracer>(std::move(bandLevels), walls,
                                           bandCfg);
    m_bandData.push_back(std::move(data));
  }
}

void SpectralTracer::computeDivQ(const CellRange& cells,
                                 MutableFieldView<double> divQ) const {
  const RadiationFieldsView& gray = m_grayLevels.front().fields;
  for (const IntVector& c : cells) {
    double sum = 0.0;
    for (const BandData& bd : m_bandData) {
      const double meanI = bd.tracer->meanIncomingIntensity(c);
      sum += bd.band.weight * bd.band.kappaScale * 4.0 * M_PI *
             gray.abskg[c] * (gray.sigmaT4OverPi[c] - meanI);
    }
    divQ[c] = sum;
  }
}

std::vector<double> SpectralTracer::bandIntensities(
    const IntVector& cell) const {
  std::vector<double> out;
  out.reserve(m_bandData.size());
  for (const BandData& bd : m_bandData)
    out.push_back(bd.tracer->meanIncomingIntensity(cell));
  return out;
}

}  // namespace rmcrt::core
