#include "core/spectral.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <string>

#include "util/metrics.h"
#include "util/trace_recorder.h"

namespace rmcrt::core {

SpectralTracer::SpectralTracer(const std::vector<TraceLevel>& levels,
                               const WallProperties& walls,
                               const TraceConfig& cfg, BandModel bands)
    : m_bands(std::move(bands)), m_levels(levels) {
  assert(!m_bands.empty());
  // ONE record set across every band: kappa scaling happens in the march
  // (TraceConfig::kappaScale), so bands share the same PackedCell
  // records — and, for GPU-staged levels, the same single device upload
  // — instead of the per-band scaled field copies the old driver built.
  if (cfg.usePackedFields) {
    m_sharedPacked.reserve(m_levels.size());
    for (TraceLevel& L : m_levels) {
      if (L.packed.valid() || !L.fields.abskg.valid()) continue;
      m_sharedPacked.emplace_back(L.fields);
      L.packed = m_sharedPacked.back().view();
    }
  }
  m_tracers.reserve(m_bands.size());
  for (std::size_t b = 0; b < m_bands.size(); ++b) {
    TraceConfig bandCfg = cfg;
    bandCfg.kappaScale = cfg.kappaScale * m_bands[b].kappaScale;
    // Per-band RNG decorrelation: offset the seed so bands don't share
    // sample paths (a correlated estimator would hide band differences).
    // Band 0 keeps cfg.seed exactly — the single-band model reproduces
    // the gray solver bitwise.
    bandCfg.seed = cfg.seed + 0x5370656Bull * b;
    m_tracers.push_back(
        std::make_unique<Tracer>(m_levels, walls, bandCfg));
  }
}

void SpectralTracer::computeDivQ(const CellRange& cells,
                                 MutableFieldView<double> divQ,
                                 ThreadPool* pool) const {
  RMCRT_TRACE_SPAN("tracer", "spectral_divQ");
  grid::CCVariable<double> scratch(cells, 0.0);
  MutableFieldView<double> sview = MutableFieldView<double>::fromHost(scratch);
  for (std::size_t b = 0; b < m_bands.size(); ++b) {
    const std::uint64_t seg0 = m_tracers[b]->segmentCount();
    const auto t0 = std::chrono::steady_clock::now();
    m_tracers[b]->computeDivQ(cells, sview, pool);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t dseg = m_tracers[b]->segmentCount() - seg0;
    if (dt > 0.0)
      MetricsRegistry::global().setGauge(
          "tracer.band" + std::to_string(b) + ".mseg_per_s",
          static_cast<double>(dseg) / dt / 1e6);
    // Fold a_b * q_b into the output. Band 0 assigns (w == 1.0 for the
    // single-band model keeps this bitwise: x*1.0 == x).
    const double w = m_bands[b].weight;
    if (b == 0) {
      for (const IntVector& c : cells) divQ[c] = w * scratch[c];
    } else {
      for (const IntVector& c : cells) divQ[c] += w * scratch[c];
    }
  }
}

void SpectralTracer::computeDivQTile(const CellRange& tile,
                                     MutableFieldView<double> divQ) const {
  RMCRT_TRACE_SPAN("tracer", "spectral_divQ_tile");
  grid::CCVariable<double> scratch(tile, 0.0);
  MutableFieldView<double> sview = MutableFieldView<double>::fromHost(scratch);
  for (std::size_t b = 0; b < m_bands.size(); ++b) {
    m_tracers[b]->computeDivQTile(tile, sview);
    const double w = m_bands[b].weight;
    if (b == 0) {
      for (const IntVector& c : tile) divQ[c] = w * scratch[c];
    } else {
      for (const IntVector& c : tile) divQ[c] += w * scratch[c];
    }
  }
}

std::vector<double> SpectralTracer::bandIntensities(
    const IntVector& cell) const {
  std::vector<double> out;
  out.reserve(m_tracers.size());
  for (const auto& t : m_tracers)
    out.push_back(t->meanIncomingIntensity(cell));
  return out;
}

std::uint64_t SpectralTracer::segmentCount() const {
  std::uint64_t n = 0;
  for (const auto& t : m_tracers) n += t->segmentCount();
  return n;
}

void SpectralTracer::resetSegmentCount() {
  for (const auto& t : m_tracers) t->resetSegmentCount();
}

}  // namespace rmcrt::core
