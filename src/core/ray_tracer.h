#pragma once

/// \file ray_tracer.h
/// The RMCRT kernel: reverse Monte Carlo ray tracing of the radiative
/// transfer equation (paper Eq. 2) to compute the divergence of the heat
/// flux (divQ) for every cell. Rays are traced *backwards* from each cell
/// (the detector) through the participating medium, accumulating the
/// incoming intensity absorbed at the origin; then
///
///   divQ(c) = 4*pi*kappa(c) * ( sigmaT4/pi(c)  -  mean_r I_r )
///
/// which vanishes in radiative equilibrium. Marching is an exact 3-D DDA
/// (amanatides-woo) through the structured mesh; the multi-level
/// configuration marches fine-mesh data inside a region of interest
/// (patch + halo) and the coarsened whole-domain data outside — the
/// paper's communication-avoiding AMR scheme (Section III-B/C).
///
/// The same kernel serves the CPU path and the simulated-GPU path
/// (field views over host or device storage; see field_view.h).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/field_view.h"
#include "core/packed_field.h"
#include "grid/level.h"
#include "util/rng.h"

namespace rmcrt {
class ThreadPool;
}

/// Whether this build carries the AVX2 packet-march path at all (the
/// function-level `target("avx2,fma")` attribute keeps the rest of the
/// binary baseline-ISA, so carrying the path never requires -mavx2).
/// Runtime dispatch (Tracer::simdSupported) decides whether to call it.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RMCRT_SIMD_X86 1
#else
#define RMCRT_SIMD_X86 0
#endif

namespace rmcrt::core {

/// Geometric description of one mesh level, detached from grid::Level so
/// kernels can run against device-resident metadata.
struct LevelGeom {
  Vector physLow;
  Vector dx;
  CellRange cells;

  static LevelGeom from(const grid::Level& l) {
    return LevelGeom{l.physLow(), l.dx(), l.cells()};
  }

  Vector cellCenter(const IntVector& c) const {
    return physLow + (Vector(c - cells.low()) + Vector(0.5)) * dx;
  }
  Vector cellLowCorner(const IntVector& c) const {
    return physLow + Vector(c - cells.low()) * dx;
  }
  IntVector cellAt(const Vector& p) const {
    const Vector rel = (p - physLow) / dx;
    return IntVector(static_cast<int>(std::floor(rel.x())),
                     static_cast<int>(std::floor(rel.y())),
                     static_cast<int>(std::floor(rel.z()))) +
           cells.low();
  }
};

class SpectralTracer;  // spectral.h — band pipeline batched via DivQTileJob

/// Wall (domain boundary / intruding geometry) radiative properties.
struct WallProperties {
  double sigmaT4OverPi = 0.0;  ///< wall emissive source (0: cold walls)
  double emissivity = 1.0;     ///< black walls by default
};

/// Tracing parameters (paper Section V uses 100 rays per cell).
struct TraceConfig {
  int nDivQRays = 100;
  /// Terminate a ray once its transmissivity drops below this.
  double threshold = 1e-4;
  /// Domain seed; (seed, cell, ray) determines each ray exactly, so
  /// results are independent of patch decomposition and thread schedule.
  std::uint64_t seed = 0;
  /// Jitter ray origins uniformly within the cell (true, the Monte Carlo
  /// estimator) or emit from cell centers (deterministic debugging).
  /// boundaryFlux likewise jitters its origins over the face.
  bool jitterRayOrigin = true;
  /// Cells per tile (each axis) when computeDivQ fans out on a thread
  /// pool. Tiles are the unit of work stealing AND of segment-counter
  /// aggregation: one atomic add per tile, none in the march loop. The
  /// default keeps a tile's field data within L1/L2 reach.
  IntVector tileSize = IntVector(8, 8, 8);
  /// March over fused PackedCell records with an incremental-stride DDA
  /// (the default; bitwise identical to the legacy three-view path) or
  /// over the separate property views (the pre-packing layout, kept for
  /// the bench_rmcrt_kernel --packed/--unpacked A/B and for regression
  /// hunting). Levels that only supply packed records (the simulated-GPU
  /// kernel) march packed regardless.
  bool usePackedFields = true;
  /// March 8 rays in lockstep with AVX2 (marchPacket8, DESIGN.md §14)
  /// when the host supports it and the first level carries packed
  /// records; rays retire from lanes on wall hit / extinction / ROI exit
  /// and lanes refill from the pending bundle. Off by default: the SIMD
  /// path uses a vectorized exp and agrees with the scalar golden march
  /// only within a documented ULP tolerance, so bitwise-reproducibility
  /// consumers (golden tests, record/replay) keep the scalar path.
  bool useSimd = false;
  /// Rays per boundaryFlux / radiometer query. Historically these fans
  /// inherited nDivQRays; wall heat-flux QoIs usually want a different
  /// (often larger) count than the volumetric estimator, so they now
  /// have their own knob with the same positive-count ctor validation.
  /// boundaryFlux(nRays = 0) resolves to this value.
  int nFluxRays = 100;
  /// Uniform scale applied to every absorption coefficient the march
  /// sees — both the per-segment extinction and the kappa factor of the
  /// divQ formula. 1.0 (default) is bitwise neutral (IEEE: x*1.0 == x).
  /// The spectral band pipeline sets it to the band's s_b so every band
  /// marches the SAME PackedCell records (one packing, one device
  /// upload) instead of per-band scaled field copies.
  double kappaScale = 1.0;
  /// Variance-adaptive per-cell ray budgets (two-pass pilot/top-up
  /// estimator, DESIGN.md §17). Off (default): every cell fires exactly
  /// nDivQRays rays — the fixed fan, bitwise unchanged. On: each cell
  /// traces nPilotRays pilot rays (a prefix of the fixed fan's
  /// (seed, cell, ray) streams), sizes its budget from the streaming
  /// pilot variance, and tops up only where the relative standard error
  /// of divQ's (source - meanI) difference exceeds errorTarget. Budgets
  /// depend only on (seed, cell), never on threads or tiles.
  bool adaptiveRays = false;
  /// Pilot fan size when adaptiveRays is set: rays 0..nPilotRays-1 are
  /// always traced and double as the budget probe. Must be positive;
  /// clamped to the effective budget cap.
  int nPilotRays = 16;
  /// Relative standard-error target for the adaptive controller: a cell
  /// whose pilot-estimated stderr(meanI) exceeds errorTarget *
  /// |sigmaT4/pi - pilotMean| tops up to ceil((s / (target * |D|))^2)
  /// rays. Calibrated on the 41^3 Burns-Christon golden: 0.015 keeps
  /// the centerline within 1% relative L2 error of the fixed 64-ray fan
  /// while tracing ~1.7x fewer segments. Must be positive when
  /// adaptiveRays is set.
  double errorTarget = 0.015;
  /// Per-cell budget cap when adaptiveRays is set. 0 (default) means
  /// nDivQRays — pure truncation of the fixed fan, so a cell that tops
  /// up to the cap reproduces its fixed-fan value bitwise. Values above
  /// nDivQRays let high-variance cells exceed the fixed fan. Negative
  /// values are rejected at construction.
  int nMaxRays = 0;
};

/// Split \p cells into tiles of at most \p tileSize cells per axis
/// (components clamped to >= 1). Tiles are emitted in z-major order and
/// exactly partition the range.
std::vector<CellRange> tileCells(const CellRange& cells,
                                 const IntVector& tileSize);

/// Shrink \p tileSize — halving the largest axis first — until tiling
/// \p cells yields at least 4 tiles per worker (the granularity
/// ThreadPool::parallelFor's static chunking needs to keep every worker
/// fed), stopping at 2 cells per axis or 64 cells per tile so tiles stay
/// big enough to amortize the per-tile segment-counter flush. Sweeps
/// whose default 8^3 tiling produces fewer tiles than workers would
/// otherwise undersubscribe the pool. Results are unchanged by tiling
/// (each cell's rays are fixed by (seed, cell, ray)), so this only moves
/// work-unit boundaries.
IntVector adaptiveTileSize(const CellRange& cells, IntVector tileSize,
                           std::size_t workers);

/// One level of marching state handed to the tracer.
struct TraceLevel {
  TraceLevel() = default;
  TraceLevel(const LevelGeom& g, const RadiationFieldsView& f,
             const CellRange& a, const PackedFieldView& p = {})
      : geom(g), fields(f), allowed(a), packed(p) {}

  LevelGeom geom;
  RadiationFieldsView fields;
  /// Cells the ray may visit on this level; leaving this box hands the
  /// ray to the next (coarser) entry, or to the wall if none remains.
  /// Must lie within the property windows.
  CellRange allowed;
  /// Fused property records covering the same window as `fields`. Leave
  /// invalid to have the Tracer pack (and own) the records itself at
  /// construction; supply one to share packing across Tracers — the
  /// adaptive pipeline's PackedLevelCache and the GPU level database.
  PackedFieldView packed;
};

/// The RMCRT tracer over a fine->coarse stack of levels.
///
/// Single-level configuration: one TraceLevel whose `allowed` equals the
/// whole level. Multi-level: entry 0 is the fine level with `allowed` set
/// to the region of interest (patch + halo); the last entry is the
/// coarsest level spanning the whole domain.
class Tracer {
 public:
  /// Levels whose `packed` view is unset are fused into Tracer-owned
  /// PackedCell arrays here (and the owned storage lives as long as the
  /// Tracer), unless cfg.usePackedFields is off — then legacy-capable
  /// levels march the separate views instead.
  /// \throws std::invalid_argument when cfg.nDivQRays <= 0: the divQ
  /// estimator divides by nDivQRays, so a non-positive count would
  /// silently fill divQ with NaN/inf.
  Tracer(std::vector<TraceLevel> levels, const WallProperties& walls,
         const TraceConfig& cfg);

  const TraceConfig& config() const { return m_cfg; }

  /// True when this build carries the AVX2 packet-march path and the
  /// host CPU supports AVX2+FMA at runtime (CPUID). The environment
  /// variable RMCRT_NO_SIMD=1 forces false — the CI fallback job uses it
  /// to exercise the scalar dispatch on AVX2 hardware.
  static bool simdSupported();

  /// Name of the instruction set the packet march would use on this
  /// host: "avx512" (AVX-512 F/DQ/VL/BW kernel, 8 lanes per register),
  /// "avx2" (two 4-lane halves), or "none" when simdSupported() is
  /// false. RMCRT_FORCE_AVX2=1 pins an AVX-512 host to the AVX2 kernel
  /// (the CI fallback matrix uses it); RMCRT_NO_SIMD=1 yields "none".
  /// Recorded in the benchmark JSON so speedups compare like for like.
  static const char* simdIsa();

  /// True when traceRays will take the 8-wide packet path: useSimd is
  /// set, the host qualifies, and level 0 carries packed records.
  bool simdActive() const {
    return m_cfg.useSimd && m_levels.front().packed.valid() &&
           simdSupported();
  }

  /// The trace levels this tracer marches (read-only; tests assert the
  /// spectral band tracers alias one shared packed record set).
  const std::vector<TraceLevel>& levels() const { return m_levels; }

  /// Trace one ray from physical position \p origin in direction \p dir
  /// starting on level \p startLevel; returns the incoming intensity.
  double traceRay(Vector origin, Vector dir, std::size_t startLevel = 0) const;

  /// Trace \p n independent rays (origins[i], dirs[i]) starting on level
  /// 0, writing each ray's incoming intensity to out[i]. Dispatches to
  /// the 8-wide AVX2 packet march when simdActive(); otherwise loops the
  /// scalar march, in which case out[i] is bitwise identical to
  /// traceRay(origins[i], dirs[i]). The SIMD path marches the exact same
  /// cell sequence per ray but evaluates the per-segment exp with a
  /// vectorized kernel, so intensities agree with the scalar path within
  /// the documented ULP tolerance (DESIGN.md §14), not bitwise.
  void traceRays(int n, const Vector* origins, const Vector* dirs,
                 double* out) const;

  /// Mean incoming intensity over nDivQRays rays for \p cell (a cell of
  /// levels[0]).
  double meanIncomingIntensity(const IntVector& cell) const;

  /// Compute divQ for every cell in \p cells (cells of levels[0]).
  ///
  /// With a \p pool, the range is split into TraceConfig::tileSize tiles
  /// run via ThreadPool::parallelFor. Because the RNG stream of every
  /// (cell, ray) pair is fixed by (seed, cell, ray) alone and each cell is
  /// written by exactly one tile, the result is bitwise identical to the
  /// serial path for any thread count and tile shape. Segment counts
  /// accumulate in per-tile locals and flush with one atomic add per
  /// tile, so the march loop itself performs no atomic operations.
  void computeDivQ(const CellRange& cells, MutableFieldView<double> divQ,
                   ThreadPool* pool = nullptr) const;

  /// One cross-request batch work unit: a tile of cells traced by \p
  /// tracer with results scattered into the request-scoped \p sink (the
  /// originating query's output buffer, whose window must contain the
  /// tile). Jobs in one batch may reference *different* Tracers — the
  /// radiation service coalesces tiles from many concurrent queries,
  /// each with its own region of interest, into a single drain over the
  /// shared pool (DESIGN.md §16).
  struct DivQTileJob {
    const Tracer* tracer = nullptr;
    CellRange tile;
    MutableFieldView<double> sink;
    /// When set, the tile is traced by this band pipeline instead of
    /// `tracer` (computeDivQBatch dispatches on it): the radiation
    /// service drains spectral scenes through the same batch as gray
    /// ones. Appended last so existing {tracer, tile, sink} aggregate
    /// initializers stay valid.
    const SpectralTracer* spectral = nullptr;
  };

  /// Serial divQ over one tile — the batch work-unit entry point. Every
  /// cell's rays are fixed by (seed, cell, ray), so any partition of a
  /// region into tile calls produces results bitwise identical to one
  /// computeDivQ over the whole region. Flushes the tile's segment count
  /// with a single atomic add.
  void computeDivQTile(const CellRange& tile,
                       MutableFieldView<double> divQ) const;

  /// Drain a batch of tile jobs — potentially from many requests and many
  /// Tracers — across \p pool (serially in job order when null). Each
  /// job's cells land only in its own sink, so results are bitwise
  /// identical to running every job's tile through computeDivQTile
  /// serially, for any thread count.
  static void computeDivQBatch(const std::vector<DivQTileJob>& jobs,
                               ThreadPool* pool);

  /// Incident radiative flux [W/m^2] through the domain-boundary face of
  /// \p cell whose outward normal is \p face (unit axis vector): traces
  /// nRays over the inward hemisphere — the boiler wall heat-flux QoI.
  /// nRays == 0 (the default) resolves to TraceConfig::nFluxRays, the
  /// flux fan's own knob. Origins are jittered uniformly over the face
  /// when TraceConfig::jitterRayOrigin is set (matching the divQ
  /// estimator). With a \p pool, rays fan out in parallel; per-ray
  /// intensities are reduced in ray order, so the flux is bitwise
  /// identical to the serial path.
  double boundaryFlux(const IntVector& cell, const IntVector& face,
                      int nRays = 0, ThreadPool* pool = nullptr) const;

  /// Total cell crossings marched so far (thread-safe, relaxed) — the
  /// work metric the performance model is calibrated against.
  std::uint64_t segmentCount() const {
    return m_segments.load(std::memory_order_relaxed);
  }
  void resetSegmentCount() {
    m_segments.store(0, std::memory_order_relaxed);
  }

  /// Adaptive-sampling work statistics since construction / last reset
  /// (relaxed atomics; exact once trace calls have returned). When
  /// adaptiveRays is off, raysTraced tracks the fixed fan so the
  /// rays-per-cell gauges stay meaningful either way.
  std::uint64_t raysTraced() const {
    return m_raysTraced.load(std::memory_order_relaxed);
  }
  std::uint64_t cellsTraced() const {
    return m_cellsTraced.load(std::memory_order_relaxed);
  }
  /// Largest per-cell ray budget granted by the adaptive controller
  /// (== nDivQRays when adaptivity is off).
  std::uint64_t maxRayBudget() const {
    return m_maxBudget.load(std::memory_order_relaxed);
  }
  void resetRayStats() {
    m_raysTraced.store(0, std::memory_order_relaxed);
    m_cellsTraced.store(0, std::memory_order_relaxed);
    m_maxBudget.store(0, std::memory_order_relaxed);
  }

 private:
  /// March within level \p li from physical position \p pos; accumulates
  /// into sumI/transmissivity and counts cell crossings into the caller's
  /// local \p segments; returns true if the ray is finished (wall,
  /// threshold or domain exit), false if it left `allowed` and should
  /// continue on level li+1 at the updated \p pos. Dispatches to the
  /// packed incremental-stride DDA when the level carries packed records,
  /// else to the legacy three-view march; both perform the exact same FP
  /// operations in the exact same order, so results are bitwise
  /// identical.
  bool marchLevel(std::size_t li, Vector& pos, const Vector& dir,
                  double& sumI, double& transmissivity,
                  std::uint64_t& segments) const;
  bool marchLevelPacked(std::size_t li, Vector& pos, const Vector& dir,
                        double& sumI, double& transmissivity,
                        std::uint64_t& segments) const;
  bool marchLevelLegacy(std::size_t li, Vector& pos, const Vector& dir,
                        double& sumI, double& transmissivity,
                        std::uint64_t& segments) const;

  /// The single flush point for per-tile / per-call segment counts: adds
  /// \p n to both the tracer's own counter and the global metrics
  /// counter, so the two can never drift.
  void flushSegments(std::uint64_t n) const;

  /// traceRay with the segment count going to a caller-owned local
  /// instead of the shared atomic.
  double traceRay(Vector origin, Vector dir, std::size_t startLevel,
                  std::uint64_t& segments) const;

  /// traceRays with a caller-owned segment counter: the scalar per-ray
  /// loop, bitwise identical to traceRay.
  void traceRaysScalar(int n, const Vector* origins, const Vector* dirs,
                       double* out, std::uint64_t& segments) const;

  /// The 8-wide AVX2 packet march (marchPacket8; ray_tracer_simd.cc,
  /// DESIGN.md §14). SoA lane state, branchless min-axis selection via
  /// vector compares/blends, masked lane retirement on wall hit /
  /// extinction / `allowed` exit, with retired lanes refilled from the
  /// pending bundle. Rays that exit level 0's allowed box retire from
  /// the packet and finish on the coarser levels via the scalar march.
  /// Callers must check simdActive() first.
  void traceRaysSimd(int n, const Vector* origins, const Vector* dirs,
                     double* out, std::uint64_t& segments) const;

#if RMCRT_SIMD_X86
  /// The two ISA-specific packet kernels behind traceRaysSimd's runtime
  /// dispatch. Both march the bitwise-identical cell sequence; they
  /// differ only in packet shape (AVX2: one packet as two 4-lane
  /// halves; AVX-512: two independent 8-lane packets interleaved to
  /// hide gather/exp latency) and in the vector exp kernel's rounding,
  /// so each agrees with the scalar reference within the same
  /// documented ULP tolerance.
  void traceRaysAvx2(int n, const Vector* origins, const Vector* dirs,
                     double* out, std::uint64_t& segments) const;
  void traceRaysAvx512(int n, const Vector* origins, const Vector* dirs,
                       double* out, std::uint64_t& segments) const;
#endif

  /// Finish a ray that left level 0's allowed box at \p pos: the coarse
  /// continuation loop shared by the scalar and packet paths.
  void finishRayCoarse(Vector pos, const Vector& dir, double& sumI,
                       double& transmissivity, std::uint64_t& segments) const;

  /// meanIncomingIntensity with a caller-owned segment counter.
  double meanIncomingIntensity(const IntVector& cell,
                               std::uint64_t& segments) const;

  /// Deterministic per-cell ray budget from the pilot statistics alone —
  /// a pure function of (seed, cell), never of threads or tiles:
  /// clamp(ceil((s / (errorTarget * |sigmaT4OverPi - pilotMean|))^2),
  ///       nPilotRays, effective cap). Zero pilot variance keeps the
  /// pilot fan; a vanishing denominator saturates at the cap.
  int adaptiveBudget(double pilotMean, double pilotStddev,
                     double sigmaT4OverPi) const;

  /// Trace rays [rBegin, rEnd) of \p cell's (seed, cell, ray) streams —
  /// identical RNG consumption to the fixed fan's prefix — appending
  /// per-ray intensities to \p sum in ray order. Dispatches to the
  /// packet march (via the reusable bundle scratch) when simdActive(),
  /// else the scalar loop; intensities[] holds the per-ray values of
  /// this range on return (pilot pass reads them for the variance).
  void traceCellRays(const IntVector& cell, int rBegin, int rEnd,
                     double& sum, std::vector<Vector>& origins,
                     std::vector<Vector>& dirs,
                     std::vector<double>& intensities,
                     std::uint64_t& segments) const;

  /// The two-pass adaptive tile: pilot fan + variance-sized top-up per
  /// cell, both passes consuming the same (seed, cell, ray) streams as
  /// the fixed fan (pilot = rays 0..nPilot-1; the top-up continues the
  /// prefix) and summed in ray order, so a cell whose budget reaches
  /// nDivQRays reproduces its fixed-fan divQ bitwise.
  void computeDivQTileAdaptive(const CellRange& tile,
                               MutableFieldView<double> divQ) const;

  /// Publish tracer.rays_per_cell_{mean,max} from the ray statistics —
  /// called at the end of computeDivQ / computeDivQBatch (not per tile,
  /// so concurrent tiles never race on the gauges).
  void publishRayGauges() const;

  /// Packet-path meanIncomingIntensity: generates the exact same
  /// (origin, dir) bundle as the scalar loop (identical RNG consumption),
  /// traces it through traceRaysSimd into \p scratch, and sums per-ray
  /// intensities in ray order.
  double meanIncomingIntensitySimd(const IntVector& cell,
                                   std::vector<Vector>& origins,
                                   std::vector<Vector>& dirs,
                                   std::vector<double>& intensities,
                                   std::uint64_t& segments) const;

  std::vector<TraceLevel> m_levels;
  WallProperties m_walls;
  TraceConfig m_cfg;
  /// Storage behind the packed views the constructor built itself. Moves
  /// of the outer vector never touch the record buffers, so the views in
  /// m_levels stay valid for the Tracer's lifetime.
  std::vector<PackedLevelField> m_ownedPacked;
  /// Whether level 0's packed records contain any wall cell — scanned
  /// once at construction when the SIMD path is eligible, so wall-free
  /// domains (the Burns-Christon benchmark) skip the per-crossing
  /// cellType gather in the packet march. Conservatively true when not
  /// scanned; domain-boundary walls are handled at box exit and never
  /// depend on this.
  bool m_level0HasWalls = true;
  mutable std::atomic<std::uint64_t> m_segments{0};
  /// Ray-budget accounting behind the rays-per-cell gauges: rays
  /// actually traced by divQ sweeps, cells processed, and the largest
  /// per-cell budget granted. Bumped once per tile (relaxed), like
  /// m_segments.
  mutable std::atomic<std::uint64_t> m_raysTraced{0};
  mutable std::atomic<std::uint64_t> m_cellsTraced{0};
  mutable std::atomic<std::uint64_t> m_maxBudget{0};
};

/// Sample an isotropic direction on the unit sphere.
inline Vector isotropicDirection(Rng& rng) {
  const double cosTheta = 2.0 * rng.nextDouble() - 1.0;
  const double sinTheta = std::sqrt(std::max(0.0, 1.0 - cosTheta * cosTheta));
  const double phi = 2.0 * M_PI * rng.nextDouble();
  return Vector(sinTheta * std::cos(phi), sinTheta * std::sin(phi),
                cosTheta);
}

}  // namespace rmcrt::core
