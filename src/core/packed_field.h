#pragma once

/// \file packed_field.h
/// The kernel data layout of the ray-march hot path (DESIGN.md §12): the
/// three radiative-property fields the marcher reads per cell crossing
/// (abskg, sigmaT4/pi, cellType) fused into one contiguous array of
/// PackedCell records. One cache-line-local load per segment replaces
/// three scattered loads that each redo the full 3D->linear index
/// multiply, and wall-ness is baked into the record so the march loop
/// carries no `cellType.valid()` branch.
///
/// Layers:
///   PackedCell       — one cell's fused record (trivially copyable, so
///                      the same bytes serve host memory and the
///                      simulated-GPU device storage)
///   PackedFieldView  — non-owning view + the per-axis linear strides the
///                      incremental DDA bumps by
///   PackedLevelField — owning host-side storage; packs from a
///                      RadiationFieldsView and repacks sub-regions
///   PackedLevelCache — persistent per-rank cache for the adaptive
///                      pipeline: repacks only coarse regions whose fine
///                      coverage changed across a regrid
///
/// Packing copies double bit patterns verbatim and the kernel performs
/// the exact same FP operations in the exact same order as the legacy
/// three-view path, so results are bitwise identical (packed_field_test).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/field_view.h"

namespace rmcrt::core {

/// One cell's radiative properties, fused. 24 bytes: a 64-byte cache
/// line holds the record plus most of its x-neighbor — the common next
/// access of the marcher.
struct PackedCell {
  double abskg = 0.0;
  double sigmaT4OverPi = 0.0;
  /// grid::CellType baked at pack time; kFlow sentinel when the source
  /// level carries no cellType field, so the kernel never branches on
  /// field validity.
  std::uint32_t cellType = 0;
  std::uint32_t pad = 0;  ///< explicit padding: deterministic record bytes

  static constexpr std::uint32_t kFlow =
      static_cast<std::uint32_t>(grid::CellType::Flow);
  static constexpr std::uint32_t kWall =
      static_cast<std::uint32_t>(grid::CellType::Wall);
};
static_assert(sizeof(PackedCell) == 24, "packed record layout changed");
static_assert(std::is_trivially_copyable_v<PackedCell>,
              "records must be memcpy-able across the PCIe bus");

/// Non-owning, trivially-copyable view over a packed level window — the
/// marcher's sole input. Exposes the per-axis linear strides so the DDA
/// can resolve a 3-D index once and then bump a linear offset by
/// stride(axis) * step(axis) on each cell crossing.
class PackedFieldView {
 public:
  PackedFieldView() = default;
  PackedFieldView(const PackedCell* data, const CellRange& window)
      : m_data(data), m_window(window) {
    const IntVector sz = window.size();
    m_stride[0] = 1;
    m_stride[1] = sz.x();
    m_stride[2] = static_cast<std::int64_t>(sz.x()) * sz.y();
  }

  static PackedFieldView fromDevice(const gpu::DeviceVar& dv) {
    assert(dv.elemSize == sizeof(PackedCell));
    return PackedFieldView(static_cast<const PackedCell*>(dv.devPtr),
                           dv.window);
  }

  bool valid() const { return m_data != nullptr; }
  const CellRange& window() const { return m_window; }

  /// Linear element offset of cell \p c (z-major, x fastest — the same
  /// linearization as FieldView/Array3).
  std::int64_t offsetOf(const IntVector& c) const {
    assert(m_window.contains(c));
    const IntVector rel = c - m_window.low();
    return rel.x() + m_stride[1] * rel.y() + m_stride[2] * rel.z();
  }

  /// Elements to advance per unit step along \p axis (0=x, 1=y, 2=z).
  std::int64_t stride(int axis) const { return m_stride[axis]; }

  /// Gather-friendly accessors for the SIMD packet march (DESIGN.md §14):
  /// the lane state keeps one linear element offset per ray and gathers
  /// each property with a byte-offset vector computed as
  /// `offset * kRecordBytes + k<Field>ByteOffset` against bytes(). The
  /// byte offsets are compile-time constants of the (static_assert'ed)
  /// record layout, so a layout change breaks the build, not the gather.
  static constexpr std::int64_t kRecordBytes =
      static_cast<std::int64_t>(sizeof(PackedCell));
  static constexpr std::int64_t kAbskgByteOffset =
      static_cast<std::int64_t>(offsetof(PackedCell, abskg));
  static constexpr std::int64_t kSigmaByteOffset =
      static_cast<std::int64_t>(offsetof(PackedCell, sigmaT4OverPi));
  static constexpr std::int64_t kCellTypeByteOffset =
      static_cast<std::int64_t>(offsetof(PackedCell, cellType));

  /// The record array as raw bytes — the gather base pointer.
  const unsigned char* bytes() const {
    return reinterpret_cast<const unsigned char*>(m_data);
  }

  /// Elements to advance per unit step along \p axis for a ray stepping
  /// in direction sign \p step (+1/-1) — the pre-signed lane stride the
  /// packet march adds to a lane's linear offset on each crossing.
  std::int64_t laneStride(int axis, int step) const {
    return m_stride[axis] * step;
  }

  const PackedCell* data() const { return m_data; }
  const PackedCell& operator[](const IntVector& c) const {
    return m_data[offsetOf(c)];
  }

 private:
  const PackedCell* m_data = nullptr;
  CellRange m_window;
  std::int64_t m_stride[3] = {0, 0, 0};
};

/// Owning host-side packed copy of one level's radiation properties.
class PackedLevelField {
 public:
  PackedLevelField() = default;
  explicit PackedLevelField(const RadiationFieldsView& fields) {
    pack(fields);
  }

  /// (Re)build the whole record array over fields.abskg's window. All
  /// supplied views must share that window.
  void pack(const RadiationFieldsView& fields);

  /// Re-fuse only \p region (clipped to the window) from \p fields —
  /// the regrid path repacks just the migrated patches' footprints.
  void repack(const RadiationFieldsView& fields, const CellRange& region);

  bool valid() const { return !m_cells.empty(); }
  const CellRange& window() const { return m_window; }
  const PackedCell* data() const { return m_cells.data(); }
  std::size_t sizeBytes() const { return m_cells.size() * sizeof(PackedCell); }
  PackedFieldView view() const {
    return PackedFieldView(m_cells.data(), m_window);
  }

 private:
  std::vector<PackedCell> m_cells;
  CellRange m_window;
};

/// Persistent packed copy of one level for pipelines that rebuild their
/// Tracer every task (the adaptive AMR path). Between regrids the coarse
/// property values are step-invariant, so the cache hands back the same
/// records; when the fine-level coverage changes, only the coarse regions
/// entering or leaving coverage are repacked — the migrated patches.
///
/// Correctness contract: property values outside the supplied coverage
/// regions must not change between refresh calls with an unchanged
/// window (true for the analytic samplers driving this pipeline; a
/// time-dependent CFD coupling must drop the cache or widen coverage).
/// Not thread-safe: use one cache per rank (task actions within a rank
/// run sequentially; the returned view is safe for concurrent read-only
/// tile workers).
class PackedLevelCache {
 public:
  /// Refresh against the current field values. \p coverage lists the
  /// regions (in this level's index space) whose values depend on finer
  /// data — for the RMCRT coarse level, the coarsened fine patch boxes.
  /// The returned view stays valid until the next refresh with a
  /// different window.
  PackedFieldView refresh(const RadiationFieldsView& fields,
                          const std::vector<CellRange>& coverage);

  /// Observability hooks (and test seams).
  int fullPacks() const { return m_fullPacks; }
  int regionRepacks() const { return m_regionRepacks; }

 private:
  PackedLevelField m_field;
  std::vector<CellRange> m_coverage;
  int m_fullPacks = 0;
  int m_regionRepacks = 0;
};

}  // namespace rmcrt::core
