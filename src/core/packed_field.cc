#include "core/packed_field.h"

#include <algorithm>

namespace rmcrt::core {

void PackedLevelField::pack(const RadiationFieldsView& fields) {
  assert(fields.abskg.valid() && fields.sigmaT4OverPi.valid() &&
         "packing needs the two property fields");
  assert(fields.sigmaT4OverPi.window() == fields.abskg.window() &&
         "property windows must coincide");
  assert((!fields.cellType.valid() ||
          fields.cellType.window() == fields.abskg.window()) &&
         "cellType window must coincide when present");
  m_window = fields.abskg.window();
  m_cells.assign(static_cast<std::size_t>(std::max<std::int64_t>(
                     m_window.volume(), 0)),
                 PackedCell{});
  repack(fields, m_window);
}

void PackedLevelField::repack(const RadiationFieldsView& fields,
                              const CellRange& region) {
  assert(valid() && "repack needs a prior full pack");
  const CellRange r = region.intersect(m_window);
  const PackedFieldView v = view();
  const bool hasCellType = fields.cellType.valid();
  for (const IntVector& c : r) {
    PackedCell& rec = m_cells[static_cast<std::size_t>(v.offsetOf(c))];
    rec.abskg = fields.abskg[c];
    rec.sigmaT4OverPi = fields.sigmaT4OverPi[c];
    rec.cellType = hasCellType
                       ? static_cast<std::uint32_t>(fields.cellType[c])
                       : PackedCell::kFlow;
  }
}

PackedFieldView PackedLevelCache::refresh(
    const RadiationFieldsView& fields,
    const std::vector<CellRange>& coverage) {
  if (!m_field.valid() || m_field.window() != fields.abskg.window()) {
    m_field.pack(fields);
    m_coverage = coverage;
    ++m_fullPacks;
    return m_field.view();
  }
  const auto listed = [](const std::vector<CellRange>& boxes,
                         const CellRange& r) {
    return std::find(boxes.begin(), boxes.end(), r) != boxes.end();
  };
  // Regions entering coverage picked up averaged fine data; regions
  // leaving it reverted to the analytic coarse sample. Both must re-fuse;
  // everything else is value-identical to the cached records.
  for (const CellRange& r : coverage)
    if (!listed(m_coverage, r)) {
      m_field.repack(fields, r);
      ++m_regionRepacks;
    }
  for (const CellRange& r : m_coverage)
    if (!listed(coverage, r)) {
      m_field.repack(fields, r);
      ++m_regionRepacks;
    }
  m_coverage = coverage;
  return m_field.view();
}

}  // namespace rmcrt::core
