#pragma once

/// \file fault_injector.h
/// Deterministic message-fault injection for the in-process communicator.
/// Attached to a Communicator (Communicator::setFaultInjector), it decides
/// the fate of every isend: deliver, drop, delay (deferred delivery via a
/// timer thread), duplicate, or reorder (held until the next message on
/// the same link overtakes it). Two ways to trigger faults:
///
///  * per-link probabilities — each (src,dst) link draws from its own
///    seeded RNG stream, so a fixed seed plus a fixed per-link send order
///    reproduces the exact same fault pattern regardless of cross-link
///    thread interleaving;
///  * scripted one-shot faults — "drop the 3rd message from rank 2 with
///    tag T" (optionally permanent from the nth match onward), so tests
///    can target exact code paths.
///
/// Injection is off by default: a Communicator with no injector attached
/// pays a single null-pointer check per isend and nothing else. The timer
/// thread is created lazily on the first deferred action.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace rmcrt::comm {

/// What the injector decided to do with one message.
enum class FaultAction { Deliver, Drop, Delay, Duplicate, Reorder };

/// Per-link fault probabilities. Evaluated in the order drop, delay,
/// duplicate, reorder from a single uniform draw, so the sum must be <= 1.
struct FaultProbabilities {
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delayMinMs = 0.2;  ///< uniform delay window for Delay faults
  double delayMaxMs = 2.0;
};

/// A scripted fault: applies to the \p nth message (1-based) matching
/// (src, dst, tag) — and, when \p permanent, to every later match too.
/// Wildcards: src/dst = kAnySource, tag = kAnyTag (see message.h).
struct ScriptedFault {
  int src = -1;  // kAnySource
  int dst = -1;  // kAnySource
  std::int64_t tag = -1;  // kAnyTag
  std::uint64_t nth = 1;
  FaultAction action = FaultAction::Drop;
  bool permanent = false;
};

/// Counters of injector activity.
struct FaultInjectorStats {
  std::uint64_t examined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
};

class FaultInjector {
 public:
  /// One decision handed back to the communicator.
  struct Plan {
    FaultAction action = FaultAction::Deliver;
    double delayMs = 0.0;
  };

  explicit FaultInjector(std::uint64_t seed = 0x9e3779b97f4a7c15ull);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Probabilities applied to every link without an explicit override.
  void setDefaultProbabilities(const FaultProbabilities& p);
  /// Override for one (src,dst) link.
  void setLinkProbabilities(int src, int dst, const FaultProbabilities& p);
  /// Register a scripted fault (matched before the probabilistic draw).
  void script(const ScriptedFault& f);

  /// Simulate whole-rank death: every message to or from \p rank is
  /// dropped from now on (counted as drops). The rank's own threads keep
  /// running until the harness unwinds them; the cluster-visible effect —
  /// total silence on every link touching the rank — is what matters for
  /// recovery testing.
  void killRank(int rank);
  bool isKilled(int rank) const;
  std::vector<int> killedRanks() const;

  /// Serialize the deterministic decision state — per-link RNG engines and
  /// draw counts, scripted-fault match counters, and the killed set — as an
  /// opaque text blob. Restoring it into an injector configured with the
  /// same seed/probabilities/scripts reproduces the exact fault sequence, a
  /// prerequisite for deterministic replay of a faulty window. Transient
  /// timer state (in-flight deferred deliveries) is intentionally excluded:
  /// snapshots are taken at quiescent step boundaries.
  std::string saveState() const;
  /// Restore state written by saveState(). Returns false (leaving the
  /// injector untouched) on a malformed or version-mismatched blob.
  bool restoreState(const std::string& blob);

  /// Decide the fate of one message. Called by Communicator::isend.
  Plan plan(int src, int dst, std::int64_t tag);

  /// Run \p fn after \p delayMs on the injector's timer thread (used for
  /// delayed delivery and for flushing held reordered messages).
  void deferMs(double delayMs, std::function<void()> fn);

  /// Discard every queued deferred action and wait for any in-flight one
  /// to finish. A Communicator calls this before it dies so no deferred
  /// delivery can touch a destroyed mailbox.
  void cancelPendingAndWait();

  FaultInjectorStats stats() const;

  /// How long reordered messages are held before a timed flush if no
  /// subsequent message overtakes them.
  double reorderHoldMs() const { return m_reorderHoldMs; }
  void setReorderHoldMs(double ms) { m_reorderHoldMs = ms; }

 private:
  struct LinkState {
    std::mt19937_64 rng;
    bool seeded = false;
    std::uint64_t count = 0;
  };
  struct ScriptState {
    ScriptedFault fault;
    std::uint64_t matches = 0;
  };
  struct Deferred {
    std::chrono::steady_clock::time_point due;
    std::uint64_t order;  // FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const Deferred& o) const {
      return due != o.due ? due > o.due : order > o.order;
    }
  };

  void timerLoop();
  void ensureTimerThreadLocked();

  const std::uint64_t m_seed;
  double m_reorderHoldMs = 3.0;

  mutable std::mutex m_mutex;  // guards link/script state + config
  FaultProbabilities m_default;
  std::map<std::pair<int, int>, FaultProbabilities> m_linkProbs;
  std::map<std::pair<int, int>, LinkState> m_links;
  std::vector<ScriptState> m_scripts;
  std::set<int> m_killed;

  std::mutex m_timerMutex;
  std::condition_variable m_timerCv;
  std::condition_variable m_timerIdleCv;
  std::priority_queue<Deferred, std::vector<Deferred>, std::greater<>>
      m_deferred;
  std::uint64_t m_deferredOrder = 0;
  bool m_timerStop = false;
  bool m_timerRunning = false;  ///< a deferred fn is executing right now
  std::thread m_timerThread;

  std::atomic<std::uint64_t> m_examined{0};
  std::atomic<std::uint64_t> m_dropped{0};
  std::atomic<std::uint64_t> m_delayed{0};
  std::atomic<std::uint64_t> m_duplicated{0};
  std::atomic<std::uint64_t> m_reordered{0};
};

}  // namespace rmcrt::comm
