#pragma once

/// \file waitfree_pool.h
/// The paper's Algorithm 1: a non-blocking, thread-scalable,
/// contention-free pool of communication records that replaced the
/// mutex-protected vector (Section IV-A). Properties reproduced from the
/// paper's description:
///
///  * Storage is a pool of individually-claimable slots; no operation
///    blocks any other thread (a failed claim just moves to the next
///    slot), and slot claims are single CAS operations, so every step
///    some thread makes progress.
///  * The iterator is "a unique, move-only object which toggles an atomic
///    flag to protect access to the referenced value", guaranteeing "no
///    two threads can have iterators which dereference to the same
///    object" — copy construction/assignment are deleted, move transfers
///    the claim, destruction releases it.
///  * find_any(pred) visits candidate slots, claims one at a time, and
///    applies the predicate (per-request MPI_Test()) under the claim —
///    replacing MPI_Testsome over a shared collection.
///
/// Slots live in fixed-size segments chained append-only, so references
/// stay stable for the pool's lifetime and growth never moves elements.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace rmcrt::comm {

/// Wait-free slot pool. \tparam T element type (move-constructible).
/// \tparam SlotsPerSegment slots per growth unit.
template <typename T, std::size_t SlotsPerSegment = 256>
class WaitFreePool {
  enum : std::uint32_t { kEmpty = 0, kWriting = 1, kFilled = 2, kClaimed = 3 };

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    alignas(T) unsigned char storage[sizeof(T)];

    T* object() { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  struct Segment {
    Slot slots[SlotsPerSegment];
    std::atomic<Segment*> next{nullptr};
  };

 public:
  WaitFreePool() : m_head(new Segment) {}

  ~WaitFreePool() {
    Segment* seg = m_head;
    while (seg) {
      for (std::size_t i = 0; i < SlotsPerSegment; ++i) {
        const std::uint32_t st = seg->slots[i].state.load();
        if (st == kFilled || st == kClaimed) seg->slots[i].object()->~T();
      }
      Segment* next = seg->next.load();
      delete seg;
      seg = next;
    }
  }

  WaitFreePool(const WaitFreePool&) = delete;
  WaitFreePool& operator=(const WaitFreePool&) = delete;

  /// The unique protected iterator of Algorithm 1. Move-only: holds the
  /// slot's claim; while alive, no other thread can dereference the same
  /// element. Destruction (without erase) returns the slot to Filled.
  class iterator {
   public:
    iterator() = default;

    iterator(iterator&& o) noexcept : m_slot(o.m_slot) { o.m_slot = nullptr; }
    iterator& operator=(iterator&& o) noexcept {
      if (this != &o) {
        release();
        m_slot = o.m_slot;
        o.m_slot = nullptr;
      }
      return *this;
    }
    iterator(const iterator&) = delete;
    iterator& operator=(const iterator&) = delete;

    ~iterator() { release(); }

    /// True when the iterator holds a claimed element (Algorithm 1 line 5).
    explicit operator bool() const { return m_slot != nullptr; }

    T& operator*() const {
      assert(m_slot);
      return *m_slot->object();
    }
    T* operator->() const {
      assert(m_slot);
      return m_slot->object();
    }

   private:
    friend class WaitFreePool;
    explicit iterator(Slot* s) : m_slot(s) {}

    void release() {
      if (m_slot) {
        m_slot->state.store(kFilled, std::memory_order_release);
        m_slot = nullptr;
      }
    }

    /// Used by erase(): the pool destroys the object and empties the slot;
    /// the iterator must forget its claim without releasing to Filled.
    Slot* take() {
      Slot* s = m_slot;
      m_slot = nullptr;
      return s;
    }

    Slot* m_slot = nullptr;
  };

  /// Insert an element; never blocks other threads (claims an Empty slot
  /// by CAS, appending a fresh segment when the chain is full).
  template <typename... Args>
  void emplace(Args&&... args) {
    for (Segment* seg = m_head;; seg = nextOrGrow(seg)) {
      for (std::size_t i = 0; i < SlotsPerSegment; ++i) {
        Slot& slot = seg->slots[i];
        std::uint32_t expect = kEmpty;
        if (slot.state.load(std::memory_order_relaxed) == kEmpty &&
            slot.state.compare_exchange_strong(expect, kWriting,
                                               std::memory_order_acq_rel)) {
          ::new (slot.storage) T(std::forward<Args>(args)...);
          slot.state.store(kFilled, std::memory_order_release);
          m_size.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  /// Find any element satisfying \p pred, claiming candidates one at a
  /// time; the predicate runs with exclusive access. Returns an engaged
  /// iterator holding the claim, or a disengaged one (Algorithm 1
  /// lines 2-5).
  template <typename Pred>
  iterator find_any(Pred&& pred) {
    for (Segment* seg = m_head; seg;
         seg = seg->next.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < SlotsPerSegment; ++i) {
        Slot& slot = seg->slots[i];
        std::uint32_t expect = kFilled;
        if (slot.state.load(std::memory_order_relaxed) == kFilled &&
            slot.state.compare_exchange_strong(expect, kClaimed,
                                               std::memory_order_acq_rel)) {
          if (pred(static_cast<const T&>(*slot.object()))) {
            return iterator(&slot);
          }
          slot.state.store(kFilled, std::memory_order_release);
        }
      }
    }
    return iterator();
  }

  /// Remove the element a claimed iterator refers to (Algorithm 1 line 8).
  void erase(iterator& it) {
    Slot* s = it.take();
    assert(s && "erase of disengaged iterator");
    s->object()->~T();
    s->state.store(kEmpty, std::memory_order_release);
    m_size.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Approximate element count (racy by nature).
  std::size_t size() const {
    const auto n = m_size.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  bool empty() const { return size() == 0; }

 private:
  Segment* nextOrGrow(Segment* seg) {
    Segment* next = seg->next.load(std::memory_order_acquire);
    if (next) return next;
    auto* fresh = new Segment;
    Segment* expected = nullptr;
    if (seg->next.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel)) {
      return fresh;
    }
    delete fresh;  // another thread grew first; use theirs
    return expected;
  }

  Segment* m_head;
  std::atomic<std::int64_t> m_size{0};
};

}  // namespace rmcrt::comm
