#pragma once

/// \file comm_node.h
/// A CommNode is one outstanding communication record: a nonblocking
/// request plus the action that must run exactly once on completion
/// (unpack into the DataWarehouse and release the staging buffer). This is
/// the element type of both request containers — the legacy locked vector
/// (comm/locked_queue.h) and the paper's wait-free pool
/// (comm/waitfree_pool.h, Algorithm 1).

#include <atomic>
#include <cstddef>
#include <functional>
#include <utility>

#include "comm/communicator.h"

namespace rmcrt::comm {

/// Tracks buffers handed to completion callbacks so tests/benchmarks can
/// detect the paper's leak: "threads allocating a buffer for the same MPI
/// message, and only one thread actually processing the message and
/// invoking the callback to deallocate its buffer."
struct BufferLedger {
  std::atomic<std::int64_t> allocated{0};
  std::atomic<std::int64_t> released{0};

  std::int64_t leaked() const {
    return allocated.load(std::memory_order_relaxed) -
           released.load(std::memory_order_relaxed);
  }
  void reset() {
    allocated.store(0, std::memory_order_relaxed);
    released.store(0, std::memory_order_relaxed);
  }
};

/// One outstanding receive (or send) record.
class CommNode {
 public:
  using Callback = std::function<void(const Request&)>;

  CommNode() = default;
  CommNode(Request req, Callback onComplete)
      : m_request(std::move(req)), m_onComplete(std::move(onComplete)) {}

  CommNode(CommNode&&) = default;
  CommNode& operator=(CommNode&&) = default;
  CommNode(const CommNode&) = delete;
  CommNode& operator=(const CommNode&) = delete;

  /// Nonblocking completion probe — the per-request MPI_Test() of
  /// Algorithm 1 line 3.
  bool test() const { return m_request.test(); }

  /// Run the completion action (Algorithm 1 line 7). Must be called with
  /// exclusive ownership of the node; the containers guarantee that.
  void finishCommunication() {
    if (m_onComplete) m_onComplete(m_request);
  }

  const Request& request() const { return m_request; }

 private:
  Request m_request;
  Callback m_onComplete;
};

}  // namespace rmcrt::comm
