#pragma once

/// \file reliable_channel.h
/// A per-rank reliability endpoint over the (possibly fault-injected)
/// Communicator: per-link sequence numbers, cumulative acknowledgements,
/// and retransmission with exponential backoff and a retry cap. The
/// scheduler routes its dependency messages through this layer so dropped,
/// duplicated, delayed, or reordered messages are recovered transparently.
///
/// Wire protocol: every data message is framed with an 8-byte sequence
/// header; every received frame is answered with an ack {cumAck, seq} on a
/// reserved tag. The receiver tracks, per source link, the highest
/// contiguous sequence received (cumAck) plus an out-of-order set, so any
/// stale retransmit or injected duplicate — including one arriving a whole
/// phase later under a reused tag — is discarded by sequence, never
/// re-delivered.
///
/// Progress is driven two ways: progress() can be called inline from a
/// polling loop (lowest latency), and a lazily-started background thread
/// ticks every progressIntervalMs so a rank blocked in a barrier still
/// acks inbound frames and retransmits its own unacked ones.

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "comm/communicator.h"
#include "util/metrics.h"

namespace rmcrt::comm {

/// Reliability counters for one endpoint.
struct ReliableChannelStats {
  std::uint64_t dataSent = 0;
  std::uint64_t dataDelivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicatesDiscarded = 0;
  std::uint64_t acksSent = 0;
  std::uint64_t acksReceived = 0;
  double maxBackoffMs = 0.0;
  std::uint64_t deadLinks = 0;  ///< links that exhausted the retry cap
};

/// Publish one endpoint's counters into \p reg as gauges under \p prefix
/// (gauges because stats() is a running total the caller may sample
/// repeatedly; see Scheduler::exportMetrics for the aggregation idiom).
inline void exportMetrics(const ReliableChannelStats& s, MetricsRegistry& reg,
                          const std::string& prefix) {
  reg.setGauge(prefix + "data_sent", static_cast<double>(s.dataSent));
  reg.setGauge(prefix + "data_delivered",
               static_cast<double>(s.dataDelivered));
  reg.setGauge(prefix + "retransmits", static_cast<double>(s.retransmits));
  reg.setGauge(prefix + "duplicates_discarded",
               static_cast<double>(s.duplicatesDiscarded));
  reg.setGauge(prefix + "acks_sent", static_cast<double>(s.acksSent));
  reg.setGauge(prefix + "acks_received",
               static_cast<double>(s.acksReceived));
  reg.setGauge(prefix + "max_backoff_ms", s.maxBackoffMs);
  reg.setGauge(prefix + "dead_links", static_cast<double>(s.deadLinks));
}

class ReliableChannel {
 public:
  struct Config {
    bool retransmit = true;    ///< false: detect loss but never resend
    int maxRetries = 12;       ///< per message, before the link is dead
    double baseBackoffMs = 4.0;
    double maxBackoffMs = 100.0;
    double progressIntervalMs = 1.0;  ///< background thread cadence
    bool backgroundProgress = true;   ///< false: caller must drive progress()
  };

  /// Reserved tag for acknowledgement frames; user tags must differ.
  static constexpr std::int64_t kAckTag =
      std::numeric_limits<std::int64_t>::min() / 2;

  ReliableChannel(Communicator& world, int rank, Config cfg);
  ReliableChannel(Communicator& world, int rank);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  int rank() const { return m_rank; }

  /// Reliable send of [data, data+bytes) to \p dst with \p tag. Returns
  /// after the first transmission; retransmission happens in progress().
  void send(int dst, std::int64_t tag, const void* data, std::size_t bytes);

  /// Post a reliable receive from the concrete rank \p src (wildcards are
  /// not supported — sequence tracking is per link). The returned request
  /// completes once a non-duplicate frame has been delivered into
  /// [buf, buf+capacity).
  Request postRecv(int src, std::int64_t tag, void* buf,
                   std::size_t capacity);

  /// Drive the protocol: process acks, deliver/dedup inbound frames, and
  /// retransmit overdue unacked messages. Thread-safe and idempotent; may
  /// be called from a polling loop and the background thread concurrently.
  void progress();

  /// Watchdog hook: make every unacked message due immediately, so the
  /// next progress() retransmits it regardless of backoff state.
  void forceRetransmit();

  std::size_t unackedCount() const;
  /// Incomplete posted receives as (source, tag) — stall diagnostics.
  std::vector<std::pair<int, std::int64_t>> pendingRecvs() const;

  /// True when the send link to \p dst has exhausted its retry cap — the
  /// strongest evidence this endpoint has that \p dst is dead rather than
  /// merely slow (a slow rank still acks once the frame finally lands).
  bool linkDead(int dst) const;

  /// Serializable protocol state: everything needed to resume the
  /// endpoint's links after a restore — per-destination sequence counters
  /// and in-flight (unacked) frames, per-source cumulative-ack/out-of-order
  /// dedup state. Pending receives are deliberately absent: snapshots are
  /// taken at quiescent step boundaries where none exist.
  struct ChannelState {
    struct Frame {
      std::uint64_t seq = 0;
      std::int64_t tag = 0;
      std::vector<std::uint8_t> bytes;  // full wire frame (header+payload)
    };
    struct SendLinkState {
      int dst = -1;
      std::uint64_t nextSeq = 1;
      bool dead = false;
      std::vector<Frame> unacked;
    };
    struct RecvLinkState {
      int src = -1;
      std::uint64_t cumAck = 0;
      std::vector<std::uint64_t> ahead;
    };
    std::vector<SendLinkState> sendLinks;
    std::vector<RecvLinkState> recvLinks;
  };

  ChannelState saveState() const;
  /// Replace link state with \p state. Restored unacked frames become due
  /// immediately (fresh retry budget), so the first progress() retransmits
  /// them; the peer's restored cumAck discards any that had actually
  /// landed. Refuses (returns false) while receives are pending — restoring
  /// under live traffic would corrupt sequence tracking.
  bool restoreState(const ChannelState& state);

  ReliableChannelStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Unacked {
    std::int64_t tag = 0;
    std::shared_ptr<Buffer> frame;  // header + payload, kept for resend
    Clock::time_point deadline;
    int retries = 0;
    double backoffMs = 0.0;
  };
  struct SendLink {
    std::uint64_t nextSeq = 1;
    std::map<std::uint64_t, Unacked> unacked;  // by seq
    bool dead = false;
  };
  struct RecvLink {
    std::uint64_t cumAck = 0;        // all seq <= cumAck delivered
    std::set<std::uint64_t> ahead;   // received beyond a gap
  };
  struct PendingRecv {
    int src = -1;
    std::int64_t tag = 0;
    void* userBuf = nullptr;
    std::size_t userCap = 0;
    std::shared_ptr<RequestState> user;  // completed by the channel
    std::shared_ptr<Buffer> wire;        // header + payload staging
    Request inner;                       // the raw communicator recv
  };

  void progressLocked();
  void sendAckLocked(int dst, std::uint64_t cumAck, std::uint64_t seq);
  void postAckRecvLocked();
  void ensureBackgroundThreadLocked();
  void backgroundLoop();

  Communicator& m_world;
  const int m_rank;
  const Config m_cfg;

  mutable std::mutex m_mutex;
  std::map<int, SendLink> m_sendLinks;    // by destination
  std::map<int, RecvLink> m_recvLinks;    // by source
  std::vector<std::unique_ptr<PendingRecv>> m_recvs;
  Buffer m_ackBuf;
  Request m_ackReq;

  bool m_stop = false;
  std::thread m_background;
  std::condition_variable m_bgCv;
  std::mutex m_bgMutex;

  ReliableChannelStats m_stats;
};

}  // namespace rmcrt::comm
