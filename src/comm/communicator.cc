#include "comm/communicator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "comm/fault_injector.h"
#include "util/backoff.h"

namespace rmcrt::comm {

Communicator::Communicator(int size) : m_size(size) {
  assert(size > 0);
  m_boxes.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    m_boxes.push_back(std::make_unique<Mailbox>());
  m_collEntries.assign(static_cast<std::size_t>(size), 0);
}

std::string Communicator::collectiveTimeoutReasonLocked(int rank) const {
  std::ostringstream os;
  os << "rank " << rank << " timed out after " << m_collTimeoutSeconds
     << "s in a collective; waiting for ranks [";
  const std::uint64_t mine = m_collEntries[static_cast<std::size_t>(rank)];
  bool first = true;
  for (int r = 0; r < m_size; ++r) {
    if (m_collEntries[static_cast<std::size_t>(r)] >= mine) continue;
    os << (first ? " " : ", ") << r;
    first = false;
  }
  os << " ] (suspected dead or severely delayed)";
  return os.str();
}

template <typename Pred>
void Communicator::collectiveWaitLocked(std::unique_lock<std::mutex>& lk,
                                        int rank, Pred&& pred) {
  if (m_collTimeoutSeconds <= 0.0) {
    m_collCv.wait(lk, std::forward<Pred>(pred));
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(m_collTimeoutSeconds));
  if (!m_collCv.wait_until(lk, deadline, std::forward<Pred>(pred))) {
    // Abort inline: we already hold m_collMutex, so calling abort() here
    // would deadlock. The caller's epoch check turns this into CommAborted.
    if (m_abortReason.empty())
      m_abortReason = collectiveTimeoutReasonLocked(rank);
    m_aborted.store(true, std::memory_order_release);
    m_collCv.notify_all();
  }
}

Communicator::~Communicator() {
  // No deferred delivery may outlive the mailboxes it writes into.
  if (m_injector) m_injector->cancelPendingAndWait();
}

void Communicator::setFaultInjector(std::shared_ptr<FaultInjector> injector) {
  if (m_injector && !injector) m_injector->cancelPendingAndWait();
  m_injector = std::move(injector);
}

void Communicator::deliver(const Message& msg, RequestState& st) {
  const std::size_t n = std::min(msg.bytes(), st.recvCapacity);
  if (n > 0) std::memcpy(st.recvBuf, msg.payload->data(), n);
  st.actualSource = msg.src;
  st.actualTag = msg.tag;
  st.actualBytes = n;
  st.complete.store(true, std::memory_order_release);
}

Request Communicator::isend(int src, int dst, std::int64_t tag,
                            const void* data, std::size_t bytes) {
  assert(dst >= 0 && dst < m_size);
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.tag = tag;
  msg.payload = makePayload(data, bytes);

  m_messagesSent.fetch_add(1, std::memory_order_relaxed);
  m_bytesSent.fetch_add(bytes, std::memory_order_relaxed);

  auto st = std::make_shared<RequestState>();
  st->complete.store(true, std::memory_order_release);  // buffered send

  if (m_injector)
    routeThroughInjector(std::move(msg));
  else
    deliverNow(std::move(msg));
  return Request(std::move(st));
}

void Communicator::deliverNow(Message msg) {
  Mailbox& box = *m_boxes[static_cast<std::size_t>(msg.dst)];
  std::shared_ptr<RequestState> target;
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      if (matches(*it->state, msg)) {
        target = it->state;
        box.posted.erase(it);
        break;
      }
    }
    if (!target) {
      box.unexpected.push_back(std::move(msg));
      m_unexpected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Deliver outside the mailbox lock: the state is exclusively ours now
  // (it was removed from the posted queue while the lock was held).
  deliver(msg, *target);
}

void Communicator::routeThroughInjector(Message msg) {
  const FaultInjector::Plan plan =
      m_injector->plan(msg.src, msg.dst, msg.tag);
  const int src = msg.src, dst = msg.dst;
  switch (plan.action) {
    case FaultAction::Drop:
      return;
    case FaultAction::Delay: {
      m_injector->deferMs(plan.delayMs, [this, m = std::move(msg)]() mutable {
        deliverNow(std::move(m));
      });
      return;
    }
    case FaultAction::Duplicate: {
      Message copy = msg;  // shares the payload; deliver never mutates it
      deliverNow(std::move(msg));
      deliverNow(std::move(copy));
      flushReorderSlot(src, dst);
      return;
    }
    case FaultAction::Reorder: {
      {
        std::lock_guard<std::mutex> lk(m_reorderMutex);
        auto [it, inserted] =
            m_reorderHeld.try_emplace(std::make_pair(src, dst));
        if (!inserted) {
          // Slot occupied: release the older hostage first, hold this one.
          Message prev = std::move(it->second);
          it->second = std::move(msg);
          deliverNow(std::move(prev));
        } else {
          it->second = std::move(msg);
        }
      }
      // Bound the holding time in case no later message overtakes it.
      m_injector->deferMs(m_injector->reorderHoldMs(),
                          [this, src, dst] { flushReorderSlot(src, dst); });
      return;
    }
    case FaultAction::Deliver:
      deliverNow(std::move(msg));
      flushReorderSlot(src, dst);
      return;
  }
}

void Communicator::flushReorderSlot(int src, int dst) {
  Message held;
  bool have = false;
  {
    std::lock_guard<std::mutex> lk(m_reorderMutex);
    auto it = m_reorderHeld.find({src, dst});
    if (it != m_reorderHeld.end()) {
      held = std::move(it->second);
      m_reorderHeld.erase(it);
      have = true;
    }
  }
  if (have) deliverNow(std::move(held));
}

Request Communicator::irecv(int rank, int src, std::int64_t tag, void* buf,
                            std::size_t capacity) {
  assert(rank >= 0 && rank < m_size);
  auto st = std::make_shared<RequestState>();
  st->recvBuf = buf;
  st->recvCapacity = capacity;
  st->wantSrc = src;
  st->wantTag = tag;

  m_recvsPosted.fetch_add(1, std::memory_order_relaxed);

  Mailbox& box = *m_boxes[static_cast<std::size_t>(rank)];
  Message matched;
  bool found = false;
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      if ((src == kAnySource || src == it->src) &&
          (tag == kAnyTag || tag == it->tag)) {
        matched = std::move(*it);
        box.unexpected.erase(it);
        found = true;
        break;
      }
    }
    if (!found) {
      box.posted.push_back(PostedRecv{st});
      return Request(std::move(st));
    }
  }
  deliver(matched, *st);
  return Request(std::move(st));
}

bool Communicator::cancelRecv(int rank, const Request& r) {
  assert(rank >= 0 && rank < m_size);
  if (!r.valid()) return false;
  Mailbox& box = *m_boxes[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lk(box.mutex);
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    if (it->state.get() == r.state()) {
      box.posted.erase(it);
      return true;
    }
  }
  return false;
}

void Communicator::recv(int rank, int src, std::int64_t tag, void* buf,
                        std::size_t capacity) {
  Request r = irecv(rank, src, tag, buf, capacity);
  util::Backoff backoff;
  while (!r.test()) {
    if (aborted()) throw CommAborted(abortReason());
    backoff.pause();
  }
}

void Communicator::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(m_collMutex);
    if (m_abortReason.empty()) m_abortReason = reason;
  }
  m_aborted.store(true, std::memory_order_release);
  m_collCv.notify_all();
}

std::string Communicator::abortReason() const {
  std::lock_guard<std::mutex> lk(m_collMutex);
  return m_abortReason.empty() ? "(no reason recorded)" : m_abortReason;
}

void Communicator::barrier(int rank) {
  std::unique_lock<std::mutex> lk(m_collMutex);
  if (aborted()) throw CommAborted(m_abortReason);
  ++m_collEntries[static_cast<std::size_t>(rank)];
  const std::uint64_t epoch = m_barrierEpoch;
  if (++m_barrierCount == m_size) {
    m_barrierCount = 0;
    ++m_barrierEpoch;
    m_collCv.notify_all();
  } else {
    collectiveWaitLocked(lk, rank,
                         [&] { return m_barrierEpoch != epoch || aborted(); });
    if (m_barrierEpoch == epoch) throw CommAborted(m_abortReason);
  }
}

double Communicator::allReduceSum(int rank, double value) {
  std::unique_lock<std::mutex> lk(m_collMutex);
  if (aborted()) throw CommAborted(m_abortReason);
  ++m_collEntries[static_cast<std::size_t>(rank)];
  const std::uint64_t epoch = m_reduceEpoch;
  if (m_reduceCount == 0) m_reduceAcc = 0.0;
  m_reduceAcc += value;
  if (++m_reduceCount == m_size) {
    m_reduceResult = m_reduceAcc;
    m_reduceCount = 0;
    ++m_reduceEpoch;
    m_collCv.notify_all();
    return m_reduceResult;
  }
  collectiveWaitLocked(lk, rank,
                       [&] { return m_reduceEpoch != epoch || aborted(); });
  if (m_reduceEpoch == epoch) throw CommAborted(m_abortReason);
  return m_reduceResult;
}

double Communicator::allReduceMax(int rank, double value) {
  std::unique_lock<std::mutex> lk(m_collMutex);
  if (aborted()) throw CommAborted(m_abortReason);
  ++m_collEntries[static_cast<std::size_t>(rank)];
  const std::uint64_t epoch = m_reduceEpoch;
  if (m_reduceCount == 0)
    m_reduceAcc = value;
  else
    m_reduceAcc = std::max(m_reduceAcc, value);
  if (++m_reduceCount == m_size) {
    m_reduceResult = m_reduceAcc;
    m_reduceCount = 0;
    ++m_reduceEpoch;
    m_collCv.notify_all();
    return m_reduceResult;
  }
  collectiveWaitLocked(lk, rank,
                       [&] { return m_reduceEpoch != epoch || aborted(); });
  if (m_reduceEpoch == epoch) throw CommAborted(m_abortReason);
  return m_reduceResult;
}

void Communicator::allGather(int rank, const void* mine, std::size_t bytes,
                             void* out) {
  std::unique_lock<std::mutex> lk(m_collMutex);
  if (aborted()) throw CommAborted(m_abortReason);
  ++m_collEntries[static_cast<std::size_t>(rank)];
  const std::uint64_t epoch = m_gatherEpoch;
  std::vector<std::byte>& buf = m_gatherBuf[epoch & 1];
  if (m_gatherCount == 0)
    buf.assign(static_cast<std::size_t>(m_size) * bytes, std::byte{0});
  std::memcpy(buf.data() + static_cast<std::size_t>(rank) * bytes, mine,
              bytes);
  if (++m_gatherCount == m_size) {
    m_gatherCount = 0;
    ++m_gatherEpoch;
    m_collCv.notify_all();
  } else {
    collectiveWaitLocked(lk, rank,
                         [&] { return m_gatherEpoch != epoch || aborted(); });
    if (m_gatherEpoch == epoch) throw CommAborted(m_abortReason);
  }
  std::memcpy(out, buf.data(), static_cast<std::size_t>(m_size) * bytes);
}

CommStats Communicator::stats() const {
  CommStats s;
  s.messagesSent = m_messagesSent.load(std::memory_order_relaxed);
  s.bytesSent = m_bytesSent.load(std::memory_order_relaxed);
  s.recvsPosted = m_recvsPosted.load(std::memory_order_relaxed);
  s.unexpectedMessages = m_unexpected.load(std::memory_order_relaxed);
  if (m_injector) {
    const FaultInjectorStats fi = m_injector->stats();
    s.dropsInjected = fi.dropped;
    s.delaysInjected = fi.delayed;
    s.duplicatesInjected = fi.duplicated;
    s.reordersInjected = fi.reordered;
  }
  return s;
}

void Communicator::resetStats() {
  m_messagesSent.store(0, std::memory_order_relaxed);
  m_bytesSent.store(0, std::memory_order_relaxed);
  m_recvsPosted.store(0, std::memory_order_relaxed);
  m_unexpected.store(0, std::memory_order_relaxed);
}

}  // namespace rmcrt::comm
