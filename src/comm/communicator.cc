#include "comm/communicator.h"

#include <cassert>
#include <cstring>
#include <thread>

namespace rmcrt::comm {

Communicator::Communicator(int size) : m_size(size) {
  assert(size > 0);
  m_boxes.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    m_boxes.push_back(std::make_unique<Mailbox>());
}

void Communicator::deliver(const Message& msg, RequestState& st) {
  const std::size_t n = std::min(msg.bytes(), st.recvCapacity);
  if (n > 0) std::memcpy(st.recvBuf, msg.payload->data(), n);
  st.actualSource = msg.src;
  st.actualTag = msg.tag;
  st.actualBytes = n;
  st.complete.store(true, std::memory_order_release);
}

Request Communicator::isend(int src, int dst, std::int64_t tag, const void* data,
                            std::size_t bytes) {
  assert(dst >= 0 && dst < m_size);
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.tag = tag;
  msg.payload = makePayload(data, bytes);

  m_messagesSent.fetch_add(1, std::memory_order_relaxed);
  m_bytesSent.fetch_add(bytes, std::memory_order_relaxed);

  auto st = std::make_shared<RequestState>();
  st->complete.store(true, std::memory_order_release);  // buffered send

  Mailbox& box = *m_boxes[static_cast<std::size_t>(dst)];
  std::shared_ptr<RequestState> target;
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      if (matches(*it->state, msg)) {
        target = it->state;
        box.posted.erase(it);
        break;
      }
    }
    if (!target) {
      box.unexpected.push_back(std::move(msg));
      m_unexpected.fetch_add(1, std::memory_order_relaxed);
      return Request(std::move(st));
    }
  }
  // Deliver outside the mailbox lock: the state is exclusively ours now
  // (it was removed from the posted queue while the lock was held).
  deliver(msg, *target);
  return Request(std::move(st));
}

Request Communicator::irecv(int rank, int src, std::int64_t tag, void* buf,
                            std::size_t capacity) {
  assert(rank >= 0 && rank < m_size);
  auto st = std::make_shared<RequestState>();
  st->recvBuf = buf;
  st->recvCapacity = capacity;
  st->wantSrc = src;
  st->wantTag = tag;

  m_recvsPosted.fetch_add(1, std::memory_order_relaxed);

  Mailbox& box = *m_boxes[static_cast<std::size_t>(rank)];
  Message matched;
  bool found = false;
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
      if ((src == kAnySource || src == it->src) &&
          (tag == kAnyTag || tag == it->tag)) {
        matched = std::move(*it);
        box.unexpected.erase(it);
        found = true;
        break;
      }
    }
    if (!found) {
      box.posted.push_back(PostedRecv{st});
      return Request(std::move(st));
    }
  }
  deliver(matched, *st);
  return Request(std::move(st));
}

void Communicator::recv(int rank, int src, std::int64_t tag, void* buf,
                        std::size_t capacity) {
  Request r = irecv(rank, src, tag, buf, capacity);
  while (!r.test()) std::this_thread::yield();
}

void Communicator::barrier(int rank) {
  (void)rank;
  std::unique_lock<std::mutex> lk(m_collMutex);
  const std::uint64_t epoch = m_barrierEpoch;
  if (++m_barrierCount == m_size) {
    m_barrierCount = 0;
    ++m_barrierEpoch;
    m_collCv.notify_all();
  } else {
    m_collCv.wait(lk, [&] { return m_barrierEpoch != epoch; });
  }
}

double Communicator::allReduceSum(int rank, double value) {
  (void)rank;
  std::unique_lock<std::mutex> lk(m_collMutex);
  const std::uint64_t epoch = m_reduceEpoch;
  if (m_reduceCount == 0) m_reduceAcc = 0.0;
  m_reduceAcc += value;
  if (++m_reduceCount == m_size) {
    m_reduceResult = m_reduceAcc;
    m_reduceCount = 0;
    ++m_reduceEpoch;
    m_collCv.notify_all();
    return m_reduceResult;
  }
  m_collCv.wait(lk, [&] { return m_reduceEpoch != epoch; });
  return m_reduceResult;
}

double Communicator::allReduceMax(int rank, double value) {
  (void)rank;
  std::unique_lock<std::mutex> lk(m_collMutex);
  const std::uint64_t epoch = m_reduceEpoch;
  if (m_reduceCount == 0)
    m_reduceAcc = value;
  else
    m_reduceAcc = std::max(m_reduceAcc, value);
  if (++m_reduceCount == m_size) {
    m_reduceResult = m_reduceAcc;
    m_reduceCount = 0;
    ++m_reduceEpoch;
    m_collCv.notify_all();
    return m_reduceResult;
  }
  m_collCv.wait(lk, [&] { return m_reduceEpoch != epoch; });
  return m_reduceResult;
}

void Communicator::allGather(int rank, const void* mine, std::size_t bytes,
                             void* out) {
  std::unique_lock<std::mutex> lk(m_collMutex);
  const std::uint64_t epoch = m_gatherEpoch;
  std::vector<std::byte>& buf = m_gatherBuf[epoch & 1];
  if (m_gatherCount == 0)
    buf.assign(static_cast<std::size_t>(m_size) * bytes, std::byte{0});
  std::memcpy(buf.data() + static_cast<std::size_t>(rank) * bytes, mine,
              bytes);
  if (++m_gatherCount == m_size) {
    m_gatherCount = 0;
    ++m_gatherEpoch;
    m_collCv.notify_all();
  } else {
    m_collCv.wait(lk, [&] { return m_gatherEpoch != epoch; });
  }
  std::memcpy(out, buf.data(), static_cast<std::size_t>(m_size) * bytes);
}

CommStats Communicator::stats() const {
  CommStats s;
  s.messagesSent = m_messagesSent.load(std::memory_order_relaxed);
  s.bytesSent = m_bytesSent.load(std::memory_order_relaxed);
  s.recvsPosted = m_recvsPosted.load(std::memory_order_relaxed);
  s.unexpectedMessages = m_unexpected.load(std::memory_order_relaxed);
  return s;
}

void Communicator::resetStats() {
  m_messagesSent.store(0, std::memory_order_relaxed);
  m_bytesSent.store(0, std::memory_order_relaxed);
  m_recvsPosted.store(0, std::memory_order_relaxed);
  m_unexpected.store(0, std::memory_order_relaxed);
}

}  // namespace rmcrt::comm
