#pragma once

/// \file communicator.h
/// An in-process message-passing layer with MPI semantics: nonblocking
/// point-to-point sends/receives between ranks hosted in one process, a
/// request/test completion model, and MPI_THREAD_MULTIPLE-style thread
/// safety (any thread may post or test operations for any rank).
///
/// This substitutes for real MPI per DESIGN.md §2: the paper's
/// infrastructure contribution concerns how *threads* manage asynchronous
/// request handles, and this layer exposes the identical handle/test
/// surface — including the property that a request completes
/// asynchronously with respect to the threads polling it (the sender's
/// thread completes a matched receive), which is what made the legacy
/// locked-vector design racy.
///
/// Failure modes are first-class: a FaultInjector attached via
/// setFaultInjector() can drop, delay, duplicate, or reorder any message
/// (see comm/fault_injector.h), and abort() wakes every rank blocked in a
/// collective or blocking recv with a CommAborted exception so one failed
/// rank cannot hang the job. With no injector attached the send path is
/// byte-identical to the fault-free one apart from a null-pointer check.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/message.h"

namespace rmcrt::comm {

class FaultInjector;

/// Thrown out of blocking calls (collectives, recv) on a world that has
/// been abort()ed — e.g. by a scheduler whose timestep stalled.
class CommAborted : public std::runtime_error {
 public:
  explicit CommAborted(const std::string& reason)
      : std::runtime_error("communicator aborted: " + reason) {}
};

/// Completion state shared between the poster and pollers of an operation.
struct RequestState {
  std::atomic<bool> complete{false};
  // Filled in for receives on completion:
  int actualSource = -1;
  std::int64_t actualTag = -1;
  std::size_t actualBytes = 0;
  // Receive destination (unmatched posted recv):
  void* recvBuf = nullptr;
  std::size_t recvCapacity = 0;
  int wantSrc = kAnySource;
  std::int64_t wantTag = kAnyTag;
};

/// A nonblocking-operation handle, analogous to MPI_Request. Copyable;
/// all copies observe the same completion.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : m_state(std::move(st)) {}

  bool valid() const { return m_state != nullptr; }

  /// Nonblocking completion probe (MPI_Test). True once the operation has
  /// finished; receives are then fully delivered into their buffer.
  bool test() const {
    return m_state && m_state->complete.load(std::memory_order_acquire);
  }

  /// Source rank of the matched message (receives, after completion).
  int source() const { return m_state ? m_state->actualSource : -1; }
  std::int64_t tag() const { return m_state ? m_state->actualTag : -1; }
  std::size_t bytes() const { return m_state ? m_state->actualBytes : 0; }

  RequestState* state() { return m_state.get(); }
  const RequestState* state() const { return m_state.get(); }

 private:
  std::shared_ptr<RequestState> m_state;
};

/// Snapshot of world-level traffic counters. The *Injected fields are only
/// nonzero when a FaultInjector is attached.
struct CommStats {
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t recvsPosted = 0;
  std::uint64_t unexpectedMessages = 0;
  std::uint64_t dropsInjected = 0;
  std::uint64_t delaysInjected = 0;
  std::uint64_t duplicatesInjected = 0;
  std::uint64_t reordersInjected = 0;
};

/// A world of \p size ranks living in one process.
///
/// Thread-safety: every method may be called from any thread for any rank
/// concurrently (the simulated MPI_THREAD_MULTIPLE). Matching takes the
/// destination rank's mailbox mutex only; completion is published via an
/// atomic, so polling (Request::test) is lock-free.
class Communicator {
 public:
  explicit Communicator(int size);
  ~Communicator();

  int size() const { return m_size; }

  /// Attach (or detach with nullptr) a fault injector. All subsequent
  /// isends — including retransmissions and acks of any reliability layer
  /// above — pass through it.
  void setFaultInjector(std::shared_ptr<FaultInjector> injector);
  const std::shared_ptr<FaultInjector>& faultInjector() const {
    return m_injector;
  }

  /// Nonblocking send: the payload is copied immediately (buffered-send
  /// semantics), so the returned request is complete at once — like an
  /// MPI_Isend whose data fit the eager buffer, the common case for
  /// Uintah's dependency messages.
  Request isend(int src, int dst, std::int64_t tag, const void* data,
                std::size_t bytes);

  /// Nonblocking receive into [buf, buf+capacity). Matches the oldest
  /// in-flight message from \p src (or kAnySource) with \p tag (or
  /// kAnyTag). Completion is observed via Request::test().
  Request irecv(int rank, int src, std::int64_t tag, void* buf, std::size_t capacity);

  /// Withdraw a still-unmatched posted receive. Returns true when the
  /// request was found posted and removed; false when it already matched
  /// (completed or mid-delivery). After a successful cancel the receive
  /// buffer will never be written.
  bool cancelRecv(int rank, const Request& r);

  /// Blocking helpers built on the nonblocking pair.
  void send(int src, int dst, std::int64_t tag, const void* data, std::size_t bytes) {
    isend(src, dst, tag, data, bytes);
  }
  void recv(int rank, int src, std::int64_t tag, void* buf, std::size_t capacity);

  /// Dissemination barrier across all ranks; call once per rank.
  void barrier(int rank);

  /// Allreduce(sum) of a double per rank; returns the global sum.
  double allReduceSum(int rank, double value);

  /// Allreduce(max).
  double allReduceMax(int rank, double value);

  /// Gather equally-sized blobs from every rank to every rank.
  /// \p mine has \p bytes bytes; \p out receives size()*bytes bytes laid
  /// out by rank.
  void allGather(int rank, const void* mine, std::size_t bytes, void* out);

  /// Bound the time any rank may wait inside a collective. <= 0 (the
  /// default) waits forever — correct when every rank is known alive. With
  /// a timeout set, a rank that waits longer aborts the whole world with a
  /// diagnostic naming the ranks that never arrived: this is how survivors
  /// of a lost rank escape a barrier the dead rank can never reach (the
  /// watchdog only covers the message-passing phase, not the barrier).
  void setCollectiveTimeout(double seconds) {
    std::lock_guard<std::mutex> lk(m_collMutex);
    m_collTimeoutSeconds = seconds;
  }

  /// Mark the world dead: every rank blocked in a collective or blocking
  /// recv (now or later) throws CommAborted instead of waiting forever.
  /// Idempotent; the first reason wins.
  void abort(const std::string& reason);
  bool aborted() const { return m_aborted.load(std::memory_order_acquire); }
  std::string abortReason() const;

  CommStats stats() const;
  void resetStats();

 private:
  struct PostedRecv {
    std::shared_ptr<RequestState> state;
  };

  struct Mailbox {
    std::mutex mutex;
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
  };

  /// Deliver \p msg into \p pr and publish completion.
  static void deliver(const Message& msg, RequestState& st);

  static bool matches(const RequestState& st, const Message& msg) {
    return (st.wantSrc == kAnySource || st.wantSrc == msg.src) &&
           (st.wantTag == kAnyTag || st.wantTag == msg.tag);
  }

  /// Fault-free delivery: match against posted receives or park in the
  /// unexpected queue. The tail of the pre-injection isend path.
  void deliverNow(Message msg);

  /// Injection path: consult the injector and drop / defer / duplicate /
  /// reorder accordingly.
  void routeThroughInjector(Message msg);

  /// Deliver the message (if any) held back for reordering on (src,dst).
  void flushReorderSlot(int src, int dst);

  /// Wait on m_collCv under \p lk until \p pred holds, honouring the
  /// collective timeout: on expiry, abort the world in place (the caller
  /// already holds m_collMutex, so Communicator::abort would deadlock)
  /// with a reason naming the laggard ranks.
  template <typename Pred>
  void collectiveWaitLocked(std::unique_lock<std::mutex>& lk, int rank,
                            Pred&& pred);

  /// "rank R timed out ... waiting for ranks [...]" — the laggards are the
  /// ranks whose collective-entry count trails ours.
  std::string collectiveTimeoutReasonLocked(int rank) const;

  int m_size;
  std::vector<std::unique_ptr<Mailbox>> m_boxes;

  std::shared_ptr<FaultInjector> m_injector;
  std::mutex m_reorderMutex;
  std::map<std::pair<int, int>, Message> m_reorderHeld;

  std::atomic<bool> m_aborted{false};

  // Collectives state (sense-reversing barrier + reduction slots).
  mutable std::mutex m_collMutex;
  std::condition_variable m_collCv;
  std::string m_abortReason;
  double m_collTimeoutSeconds = 0.0;  ///< <= 0: wait forever
  /// Collective entries per rank. Every rank runs the same collective
  /// sequence, so during a stall the laggards are exactly the ranks whose
  /// count trails the waiter's — cheap dead-rank identification.
  std::vector<std::uint64_t> m_collEntries;
  int m_barrierCount = 0;
  std::uint64_t m_barrierEpoch = 0;
  double m_reduceAcc = 0.0;
  int m_reduceCount = 0;
  std::uint64_t m_reduceEpoch = 0;
  double m_reduceResult = 0.0;
  // Double-buffered by epoch parity: a rank can be at most one collective
  // ahead of the slowest waiter, so two buffers prevent reuse races.
  std::vector<std::byte> m_gatherBuf[2];
  int m_gatherCount = 0;
  std::uint64_t m_gatherEpoch = 0;

  std::atomic<std::uint64_t> m_messagesSent{0};
  std::atomic<std::uint64_t> m_bytesSent{0};
  std::atomic<std::uint64_t> m_recvsPosted{0};
  std::atomic<std::uint64_t> m_unexpected{0};
};

}  // namespace rmcrt::comm
