#pragma once

/// \file request_pool.h
/// Drop-in replacement for LockedRequestQueue built on the wait-free pool
/// — the direct transliteration of the paper's Algorithm 1:
///
///   RecvCommList& recv_list = m_recv_lists[id];
///   auto ready_request = [](CommNode const& n) -> bool { return n.test(); };
///   iterator = recv_list.find_any(ready_request);
///   if (iterator) {
///     iterator->finishCommunication(...);
///     recv_list.erase(iterator);
///   }
///
/// Both containers satisfy the same informal concept (add / processReady /
/// pending), so the scheduler and the Figure-1 benchmark are templated
/// over the container choice.

#include <cstddef>

#include "comm/comm_node.h"
#include "comm/waitfree_pool.h"

namespace rmcrt::comm {

/// Wait-free request container (the paper's "after").
class WaitFreeRequestPool {
 public:
  using RecvCommList = WaitFreePool<CommNode>;

  /// Add an outstanding record. Wait-free.
  void add(CommNode node) { m_list.emplace(std::move(node)); }

  /// Complete at most every currently-ready request, one exclusive claim
  /// at a time (Algorithm 1 applied until no ready request remains).
  /// Returns the number completed by this call.
  int processReady() {
    int completed = 0;
    for (;;) {
      auto ready_request = [](CommNode const& n) -> bool { return n.test(); };
      auto it = m_list.find_any(ready_request);
      if (!it) break;
      it->finishCommunication();
      m_list.erase(it);
      ++completed;
    }
    return completed;
  }

  /// Complete at most one ready request (the per-iteration form the
  /// scheduler's polling loop uses).
  bool processOne() {
    auto ready_request = [](CommNode const& n) -> bool { return n.test(); };
    auto it = m_list.find_any(ready_request);
    if (!it) return false;
    it->finishCommunication();
    m_list.erase(it);
    return true;
  }

  std::size_t pending() const { return m_list.size(); }

 private:
  RecvCommList m_list;
};

}  // namespace rmcrt::comm
