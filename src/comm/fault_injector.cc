#include "comm/fault_injector.h"

#include <sstream>
#include <utility>

namespace rmcrt::comm {

namespace {

/// Stable per-link seed mix (splitmix64 finalizer over seed^src^dst).
std::uint64_t mixSeed(std::uint64_t seed, int src, int dst) {
  std::uint64_t z = seed;
  z ^= 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(src) + 1);
  z ^= 0xbf58476d1ce4e5b9ull * (static_cast<std::uint64_t>(dst) + 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr int kMatchAny = -1;  // kAnySource / kAnyTag

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : m_seed(seed) {}

FaultInjector::~FaultInjector() {
  cancelPendingAndWait();
  {
    std::lock_guard<std::mutex> lk(m_timerMutex);
    m_timerStop = true;
  }
  m_timerCv.notify_all();
  if (m_timerThread.joinable()) m_timerThread.join();
}

void FaultInjector::setDefaultProbabilities(const FaultProbabilities& p) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_default = p;
}

void FaultInjector::setLinkProbabilities(int src, int dst,
                                         const FaultProbabilities& p) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_linkProbs[{src, dst}] = p;
}

void FaultInjector::script(const ScriptedFault& f) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_scripts.push_back(ScriptState{f, 0});
}

void FaultInjector::killRank(int rank) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_killed.insert(rank);
}

bool FaultInjector::isKilled(int rank) const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_killed.count(rank) > 0;
}

std::vector<int> FaultInjector::killedRanks() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return std::vector<int>(m_killed.begin(), m_killed.end());
}

FaultInjector::Plan FaultInjector::plan(int src, int dst, std::int64_t tag) {
  m_examined.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(m_mutex);

  // A dead rank neither sends nor receives: silence on every touching
  // link. Checked before scripts so a kill overrides any other fate.
  if (m_killed.count(src) > 0 || m_killed.count(dst) > 0) {
    m_dropped.fetch_add(1, std::memory_order_relaxed);
    return Plan{FaultAction::Drop, 0.0};
  }

  // Scripted faults take precedence over the probabilistic draw.
  for (ScriptState& s : m_scripts) {
    const ScriptedFault& f = s.fault;
    if ((f.src == kMatchAny || f.src == src) &&
        (f.dst == kMatchAny || f.dst == dst) &&
        (f.tag == kMatchAny || f.tag == tag)) {
      ++s.matches;
      if (s.matches == f.nth || (f.permanent && s.matches > f.nth)) {
        Plan p{f.action, 0.0};
        switch (f.action) {
          case FaultAction::Drop:
            m_dropped.fetch_add(1, std::memory_order_relaxed);
            return p;
          case FaultAction::Duplicate:
            m_duplicated.fetch_add(1, std::memory_order_relaxed);
            return p;
          case FaultAction::Reorder:
            m_reordered.fetch_add(1, std::memory_order_relaxed);
            return p;
          case FaultAction::Delay: {
            const auto it = m_linkProbs.find({src, dst});
            const FaultProbabilities& probs =
                it != m_linkProbs.end() ? it->second : m_default;
            p.delayMs = 0.5 * (probs.delayMinMs + probs.delayMaxMs);
            m_delayed.fetch_add(1, std::memory_order_relaxed);
            return p;
          }
          case FaultAction::Deliver:
            return p;
        }
      }
    }
  }

  const auto probsIt = m_linkProbs.find({src, dst});
  const FaultProbabilities& probs =
      probsIt != m_linkProbs.end() ? probsIt->second : m_default;
  if (probs.drop <= 0 && probs.delay <= 0 && probs.duplicate <= 0 &&
      probs.reorder <= 0) {
    return Plan{};
  }

  LinkState& link = m_links[{src, dst}];
  if (!link.seeded) {
    link.rng.seed(mixSeed(m_seed, src, dst));
    link.seeded = true;
  }
  ++link.count;
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double u = uni(link.rng);
  double edge = probs.drop;
  if (u < edge) {
    m_dropped.fetch_add(1, std::memory_order_relaxed);
    return Plan{FaultAction::Drop, 0.0};
  }
  edge += probs.delay;
  if (u < edge) {
    std::uniform_real_distribution<double> d(probs.delayMinMs,
                                             probs.delayMaxMs);
    m_delayed.fetch_add(1, std::memory_order_relaxed);
    return Plan{FaultAction::Delay, d(link.rng)};
  }
  edge += probs.duplicate;
  if (u < edge) {
    m_duplicated.fetch_add(1, std::memory_order_relaxed);
    return Plan{FaultAction::Duplicate, 0.0};
  }
  edge += probs.reorder;
  if (u < edge) {
    m_reordered.fetch_add(1, std::memory_order_relaxed);
    return Plan{FaultAction::Reorder, 0.0};
  }
  return Plan{};
}

void FaultInjector::ensureTimerThreadLocked() {
  if (!m_timerThread.joinable())
    m_timerThread = std::thread([this] { timerLoop(); });
}

void FaultInjector::deferMs(double delayMs, std::function<void()> fn) {
  const auto due =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(delayMs * 1000.0));
  {
    std::lock_guard<std::mutex> lk(m_timerMutex);
    m_deferred.push(Deferred{due, m_deferredOrder++, std::move(fn)});
    ensureTimerThreadLocked();
  }
  m_timerCv.notify_all();
}

void FaultInjector::cancelPendingAndWait() {
  std::unique_lock<std::mutex> lk(m_timerMutex);
  while (!m_deferred.empty()) m_deferred.pop();
  m_timerIdleCv.wait(lk, [this] { return !m_timerRunning; });
}

void FaultInjector::timerLoop() {
  std::unique_lock<std::mutex> lk(m_timerMutex);
  for (;;) {
    if (m_timerStop) return;
    if (m_deferred.empty()) {
      m_timerCv.wait(lk,
                     [this] { return m_timerStop || !m_deferred.empty(); });
      continue;
    }
    const auto due = m_deferred.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      m_timerCv.wait_until(lk, due);
      continue;  // re-check: queue may have changed / stop requested
    }
    // Move the action out so the queue can be mutated while it runs.
    std::function<void()> fn =
        std::move(const_cast<Deferred&>(m_deferred.top()).fn);
    m_deferred.pop();
    m_timerRunning = true;
    lk.unlock();
    fn();
    lk.lock();
    m_timerRunning = false;
    m_timerIdleCv.notify_all();
  }
}

std::string FaultInjector::saveState() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  std::ostringstream os;
  os << "faultinjector v1\n";
  os << "killed " << m_killed.size();
  for (int r : m_killed) os << ' ' << r;
  os << '\n';
  os << "scripts " << m_scripts.size();
  for (const ScriptState& s : m_scripts) os << ' ' << s.matches;
  os << '\n';
  os << "links " << m_links.size() << '\n';
  for (const auto& [key, link] : m_links) {
    os << key.first << ' ' << key.second << ' ' << link.count << ' '
       << (link.seeded ? 1 : 0) << ' ' << link.rng << '\n';
  }
  return os.str();
}

bool FaultInjector::restoreState(const std::string& blob) {
  std::istringstream is(blob);
  std::string word, version;
  if (!(is >> word >> version) || word != "faultinjector" || version != "v1")
    return false;

  std::size_t nKilled = 0;
  if (!(is >> word >> nKilled) || word != "killed") return false;
  std::set<int> killed;
  for (std::size_t i = 0; i < nKilled; ++i) {
    int r;
    if (!(is >> r)) return false;
    killed.insert(r);
  }

  std::size_t nScripts = 0;
  if (!(is >> word >> nScripts) || word != "scripts") return false;
  std::vector<std::uint64_t> matches(nScripts);
  for (std::size_t i = 0; i < nScripts; ++i)
    if (!(is >> matches[i])) return false;

  std::size_t nLinks = 0;
  if (!(is >> word >> nLinks) || word != "links") return false;
  std::map<std::pair<int, int>, LinkState> links;
  for (std::size_t i = 0; i < nLinks; ++i) {
    int src, dst, seeded;
    LinkState link;
    if (!(is >> src >> dst >> link.count >> seeded >> link.rng)) return false;
    link.seeded = seeded != 0;
    links[{src, dst}] = std::move(link);
  }

  std::lock_guard<std::mutex> lk(m_mutex);
  // The script list itself is configuration (re-registered by the caller);
  // only the match counters are state. Count mismatch = different config.
  if (m_scripts.size() != nScripts) return false;
  for (std::size_t i = 0; i < nScripts; ++i) m_scripts[i].matches = matches[i];
  m_killed = std::move(killed);
  m_links = std::move(links);
  return true;
}

FaultInjectorStats FaultInjector::stats() const {
  FaultInjectorStats s;
  s.examined = m_examined.load(std::memory_order_relaxed);
  s.dropped = m_dropped.load(std::memory_order_relaxed);
  s.delayed = m_delayed.load(std::memory_order_relaxed);
  s.duplicated = m_duplicated.load(std::memory_order_relaxed);
  s.reordered = m_reordered.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rmcrt::comm
