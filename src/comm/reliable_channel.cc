#include "comm/reliable_channel.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/logger.h"
#include "util/trace_recorder.h"

namespace rmcrt::comm {

namespace {

/// 8-byte frame header carrying the per-link sequence number.
struct WireHeader {
  std::uint64_t seq;
};

/// Ack payload: cumulative ack plus the specific sequence being answered
/// (so out-of-order receipts stop retransmitting before the gap fills).
struct AckPayload {
  std::uint64_t cumAck;
  std::uint64_t seq;
};

}  // namespace

ReliableChannel::ReliableChannel(Communicator& world, int rank, Config cfg)
    : m_world(world), m_rank(rank), m_cfg(cfg) {
  m_ackBuf.resize(sizeof(AckPayload));
}

ReliableChannel::ReliableChannel(Communicator& world, int rank)
    : ReliableChannel(world, rank, Config{}) {}

ReliableChannel::~ReliableChannel() {
  {
    std::lock_guard<std::mutex> lk(m_bgMutex);
    m_stop = true;
  }
  m_bgCv.notify_all();
  if (m_background.joinable()) m_background.join();

  // Withdraw our posted receives so no late delivery can write into the
  // wire buffers we are about to free. A cancel can fail only when the
  // request already matched; completion then finishes on the sender's
  // thread imminently — wait it out before releasing the buffers.
  std::lock_guard<std::mutex> lk(m_mutex);
  for (auto& pr : m_recvs) {
    if (!m_world.cancelRecv(m_rank, pr->inner)) {
      while (!pr->inner.test()) std::this_thread::yield();
    }
  }
  if (m_ackReq.valid() && !m_world.cancelRecv(m_rank, m_ackReq)) {
    while (!m_ackReq.test()) std::this_thread::yield();
  }
}

void ReliableChannel::ensureBackgroundThreadLocked() {
  if (!m_cfg.backgroundProgress || m_background.joinable()) return;
  m_background = std::thread([this] { backgroundLoop(); });
}

void ReliableChannel::backgroundLoop() {
  const auto interval = std::chrono::microseconds(
      static_cast<std::int64_t>(m_cfg.progressIntervalMs * 1000.0));
  std::unique_lock<std::mutex> lk(m_bgMutex);
  while (!m_stop) {
    m_bgCv.wait_for(lk, interval, [this] { return m_stop; });
    if (m_stop) return;
    lk.unlock();
    progress();
    lk.lock();
  }
}

void ReliableChannel::send(int dst, std::int64_t tag, const void* data,
                           std::size_t bytes) {
  assert(tag != kAckTag && "tag collides with the reserved ack tag");
  RMCRT_TRACE_SPAN("comm", "channel_send");
  std::lock_guard<std::mutex> lk(m_mutex);
  ensureBackgroundThreadLocked();
  postAckRecvLocked();

  SendLink& link = m_sendLinks[dst];
  const std::uint64_t seq = link.nextSeq++;

  auto frame = std::make_shared<Buffer>(sizeof(WireHeader) + bytes);
  WireHeader hdr{seq};
  std::memcpy(frame->data(), &hdr, sizeof hdr);
  if (bytes > 0)
    std::memcpy(frame->data() + sizeof hdr, data, bytes);

  m_world.isend(m_rank, dst, tag, frame->data(), frame->size());
  ++m_stats.dataSent;

  Unacked u;
  u.tag = tag;
  u.frame = std::move(frame);
  u.backoffMs = m_cfg.baseBackoffMs;
  u.deadline = Clock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                                  u.backoffMs * 1000.0));
  link.unacked.emplace(seq, std::move(u));
}

Request ReliableChannel::postRecv(int src, std::int64_t tag, void* buf,
                                  std::size_t capacity) {
  assert(src >= 0 && "reliable receives need a concrete source rank");
  assert(tag != kAckTag && "tag collides with the reserved ack tag");
  std::lock_guard<std::mutex> lk(m_mutex);
  ensureBackgroundThreadLocked();
  postAckRecvLocked();

  auto pr = std::make_unique<PendingRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->userBuf = buf;
  pr->userCap = capacity;
  pr->user = std::make_shared<RequestState>();
  pr->user->recvBuf = buf;
  pr->user->recvCapacity = capacity;
  pr->user->wantSrc = src;
  pr->user->wantTag = tag;
  pr->wire = std::make_shared<Buffer>(sizeof(WireHeader) + capacity);
  pr->inner =
      m_world.irecv(m_rank, src, tag, pr->wire->data(), pr->wire->size());
  Request user(pr->user);
  m_recvs.push_back(std::move(pr));
  return user;
}

void ReliableChannel::postAckRecvLocked() {
  if (m_ackReq.valid()) return;
  m_ackReq = m_world.irecv(m_rank, kAnySource, kAckTag, m_ackBuf.data(),
                           m_ackBuf.size());
}

void ReliableChannel::sendAckLocked(int dst, std::uint64_t cumAck,
                                    std::uint64_t seq) {
  AckPayload ack{cumAck, seq};
  m_world.isend(m_rank, dst, kAckTag, &ack, sizeof ack);
  ++m_stats.acksSent;
}

void ReliableChannel::progress() {
  std::lock_guard<std::mutex> lk(m_mutex);
  progressLocked();
}

void ReliableChannel::progressLocked() {
  // 1. Drain acknowledgements addressed to us.
  while (m_ackReq.valid() && m_ackReq.test()) {
    AckPayload ack{};
    std::memcpy(&ack, m_ackBuf.data(),
                std::min(sizeof ack, m_ackReq.bytes()));
    const int from = m_ackReq.source();
    ++m_stats.acksReceived;
    auto it = m_sendLinks.find(from);
    if (it != m_sendLinks.end()) {
      SendLink& link = it->second;
      link.unacked.erase(link.unacked.begin(),
                         link.unacked.upper_bound(ack.cumAck));
      link.unacked.erase(ack.seq);
    }
    m_ackReq = Request();
    postAckRecvLocked();
  }

  // 2. Deliver (or discard as duplicate) completed inbound data frames.
  for (auto it = m_recvs.begin(); it != m_recvs.end();) {
    PendingRecv& pr = **it;
    if (!pr.inner.test()) {
      ++it;
      continue;
    }
    if (pr.inner.bytes() < sizeof(WireHeader)) {
      // Malformed frame (never produced by this protocol): repost.
      RMCRT_WARN("reliable channel rank " << m_rank
                                          << ": runt frame discarded");
      pr.inner = m_world.irecv(m_rank, pr.src, pr.tag, pr.wire->data(),
                               pr.wire->size());
      ++it;
      continue;
    }
    WireHeader hdr{};
    std::memcpy(&hdr, pr.wire->data(), sizeof hdr);
    RecvLink& link = m_recvLinks[pr.src];
    const bool duplicate =
        hdr.seq <= link.cumAck || link.ahead.count(hdr.seq) > 0;
    if (duplicate) {
      ++m_stats.duplicatesDiscarded;
      // Re-ack so a sender stuck retransmitting an already-received frame
      // stops, then keep waiting for the frame this recv actually wants.
      sendAckLocked(pr.src, link.cumAck, hdr.seq);
      pr.inner = m_world.irecv(m_rank, pr.src, pr.tag, pr.wire->data(),
                               pr.wire->size());
      ++it;
      continue;
    }
    if (hdr.seq == link.cumAck + 1) {
      ++link.cumAck;
      while (!link.ahead.empty() &&
             *link.ahead.begin() == link.cumAck + 1) {
        ++link.cumAck;
        link.ahead.erase(link.ahead.begin());
      }
    } else {
      link.ahead.insert(hdr.seq);
    }
    sendAckLocked(pr.src, link.cumAck, hdr.seq);

    const std::size_t payloadBytes = pr.inner.bytes() - sizeof hdr;
    const std::size_t n = std::min(payloadBytes, pr.userCap);
    if (n > 0)
      std::memcpy(pr.userBuf, pr.wire->data() + sizeof hdr, n);
    pr.user->actualSource = pr.src;
    pr.user->actualTag = pr.tag;
    pr.user->actualBytes = n;
    pr.user->complete.store(true, std::memory_order_release);
    ++m_stats.dataDelivered;
    it = m_recvs.erase(it);
  }

  // 3. Retransmit overdue unacked frames with exponential backoff.
  const auto now = Clock::now();
  for (auto& [dst, link] : m_sendLinks) {
    for (auto& [seq, u] : link.unacked) {
      if (now < u.deadline) continue;
      if (!m_cfg.retransmit) {
        u.deadline = now + std::chrono::hours(24);  // detect-only mode
        continue;
      }
      if (u.retries >= m_cfg.maxRetries) {
        if (!link.dead) {
          link.dead = true;
          ++m_stats.deadLinks;
          RMCRT_ERROR("reliable channel rank "
                      << m_rank << ": link to rank " << dst
                      << " exhausted " << m_cfg.maxRetries
                      << " retries (seq " << seq << ", tag " << u.tag
                      << ")");
        }
        u.deadline = now + std::chrono::hours(24);
        continue;
      }
      m_world.isend(m_rank, dst, u.tag, u.frame->data(), u.frame->size());
      ++u.retries;
      ++m_stats.retransmits;
      RMCRT_TRACE_INSTANT("comm", "retransmit");
      u.backoffMs = std::min(m_cfg.maxBackoffMs, u.backoffMs * 2.0);
      m_stats.maxBackoffMs = std::max(m_stats.maxBackoffMs, u.backoffMs);
      u.deadline = now + std::chrono::microseconds(
                             static_cast<std::int64_t>(u.backoffMs * 1000.0));
    }
  }
}

void ReliableChannel::forceRetransmit() {
  std::lock_guard<std::mutex> lk(m_mutex);
  const auto now = Clock::now();
  for (auto& [dst, link] : m_sendLinks)
    for (auto& [seq, u] : link.unacked) u.deadline = now;
  progressLocked();
}

std::size_t ReliableChannel::unackedCount() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  std::size_t n = 0;
  for (const auto& [dst, link] : m_sendLinks) n += link.unacked.size();
  return n;
}

std::vector<std::pair<int, std::int64_t>> ReliableChannel::pendingRecvs()
    const {
  std::lock_guard<std::mutex> lk(m_mutex);
  std::vector<std::pair<int, std::int64_t>> out;
  out.reserve(m_recvs.size());
  for (const auto& pr : m_recvs) out.emplace_back(pr->src, pr->tag);
  return out;
}

bool ReliableChannel::linkDead(int dst) const {
  std::lock_guard<std::mutex> lk(m_mutex);
  auto it = m_sendLinks.find(dst);
  return it != m_sendLinks.end() && it->second.dead;
}

ReliableChannel::ChannelState ReliableChannel::saveState() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  ChannelState state;
  state.sendLinks.reserve(m_sendLinks.size());
  for (const auto& [dst, link] : m_sendLinks) {
    ChannelState::SendLinkState s;
    s.dst = dst;
    s.nextSeq = link.nextSeq;
    s.dead = link.dead;
    s.unacked.reserve(link.unacked.size());
    for (const auto& [seq, u] : link.unacked) {
      ChannelState::Frame f;
      f.seq = seq;
      f.tag = u.tag;
      f.bytes.resize(u.frame->size());
      if (!f.bytes.empty())
        std::memcpy(f.bytes.data(), u.frame->data(), f.bytes.size());
      s.unacked.push_back(std::move(f));
    }
    state.sendLinks.push_back(std::move(s));
  }
  state.recvLinks.reserve(m_recvLinks.size());
  for (const auto& [src, link] : m_recvLinks) {
    ChannelState::RecvLinkState r;
    r.src = src;
    r.cumAck = link.cumAck;
    r.ahead.assign(link.ahead.begin(), link.ahead.end());
    state.recvLinks.push_back(std::move(r));
  }
  return state;
}

bool ReliableChannel::restoreState(const ChannelState& state) {
  std::lock_guard<std::mutex> lk(m_mutex);
  if (!m_recvs.empty()) return false;  // live traffic: refuse

  m_sendLinks.clear();
  m_recvLinks.clear();
  const auto now = Clock::now();
  for (const auto& s : state.sendLinks) {
    SendLink& link = m_sendLinks[s.dst];
    link.nextSeq = s.nextSeq;
    link.dead = s.dead;
    for (const auto& f : s.unacked) {
      Unacked u;
      u.tag = f.tag;
      u.frame = std::make_shared<Buffer>(f.bytes.size());
      if (!f.bytes.empty())
        std::memcpy(u.frame->data(), f.bytes.data(), f.bytes.size());
      // Due immediately with a fresh retry budget: progress() retransmits,
      // and the peer's restored cumAck discards any frame that did land.
      u.deadline = now;
      u.retries = 0;
      u.backoffMs = m_cfg.baseBackoffMs;
      link.unacked.emplace(f.seq, std::move(u));
    }
  }
  for (const auto& r : state.recvLinks) {
    RecvLink& link = m_recvLinks[r.src];
    link.cumAck = r.cumAck;
    link.ahead.insert(r.ahead.begin(), r.ahead.end());
  }
  return true;
}

ReliableChannelStats ReliableChannel::stats() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_stats;
}

}  // namespace rmcrt::comm
