#pragma once

/// \file message.h
/// Message envelope and buffer types for the in-process message-passing
/// layer (see comm/communicator.h). Payloads are reference-counted byte
/// buffers allocated from the mmap arena (they are exactly the paper's
/// "large transient" MPI-buffer class).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/allocators.h"

namespace rmcrt::comm {

/// Wildcards matching MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A contiguous payload buffer. Uses the mmap-backed allocator so message
/// traffic never touches (or fragments) the general heap.
using Buffer = std::vector<std::byte, mem::MmapAllocator<std::byte>>;

/// An in-flight message: envelope plus shared payload. The payload is
/// shared so a completed send can hand the bytes to the matching receive
/// without a second copy when sizes allow.
struct Message {
  int src = -1;
  int dst = -1;
  std::int64_t tag = 0;
  std::shared_ptr<Buffer> payload;

  std::size_t bytes() const { return payload ? payload->size() : 0; }
};

/// Make a payload buffer holding a copy of [data, data+bytes).
inline std::shared_ptr<Buffer> makePayload(const void* data,
                                           std::size_t bytes) {
  auto buf = std::make_shared<Buffer>(bytes);
  if (bytes > 0) std::memcpy(buf->data(), data, bytes);
  return buf;
}

}  // namespace rmcrt::comm
