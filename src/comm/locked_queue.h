#pragma once

/// \file locked_queue.h
/// The *legacy* Uintah design this paper replaced (Section IV-A): a
/// mutex/rwlock-protected vector of communication records processed with
/// MPI_Testsome()-style batch scans. Two modes are provided:
///
///  * Mode::Racy — faithful to the original bug: the ready-scan runs under
///    a shared (read) lock, so multiple threads can observe the same
///    request as ready and each "process" it, double-running completion
///    and leaking all but one staging buffer. The race is probabilistic;
///    tests amplify it with many threads and verify a BufferLedger leak.
///  * Mode::Serialized — the "more coarse-grained critical section [that]
///    was not feasible [because] it would have serialized a substantial
///    portion of the algorithm": the whole scan-and-process runs under an
///    exclusive lock. Correct, but every thread contends on one mutex —
///    this is the "before" series in Figure 1 / Table I.

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "comm/comm_node.h"

namespace rmcrt::comm {

/// Legacy mutex-protected request container (the paper's "before").
class LockedRequestQueue {
 public:
  enum class Mode {
    Racy,        ///< shared-lock scan; reproduces the leak race
    Serialized,  ///< exclusive-lock scan; correct but contended
  };

  explicit LockedRequestQueue(Mode mode = Mode::Serialized) : m_mode(mode) {}

  /// Add an outstanding record.
  void add(CommNode node) {
    std::unique_lock<std::shared_mutex> lk(m_lock);
    m_nodes.push_back(
        std::make_unique<Entry>(Entry{std::move(node), false}));
  }

  /// Test all outstanding requests (the Testsome pattern), running the
  /// completion action for each ready one, then compacting the vector.
  /// Returns the number of requests this call completed.
  ///
  /// In Racy mode this deliberately mirrors the original defect: the scan
  /// and completion run under a *shared* lock with a non-atomic
  /// "processed" flag, so two threads can both process the same entry.
  int processReady() {
    int completed = 0;
    if (m_mode == Mode::Racy) {
      {
        std::shared_lock<std::shared_mutex> lk(m_lock);
        for (auto& e : m_nodes) {
          if (e && !e->processed && e->node.test()) {
            // RACE WINDOW: another thread can pass the same check before
            // either sets `processed`. Both then run finishCommunication.
            e->node.finishCommunication();
            e->processed = true;
            ++completed;
          }
        }
      }
      compact();
    } else {
      std::unique_lock<std::shared_mutex> lk(m_lock);
      for (auto& e : m_nodes) {
        if (e && !e->processed && e->node.test()) {
          e->node.finishCommunication();
          e->processed = true;
          ++completed;
        }
      }
      compactLocked();
    }
    return completed;
  }

  /// Outstanding (unprocessed) records.
  std::size_t pending() const {
    std::shared_lock<std::shared_mutex> lk(m_lock);
    std::size_t n = 0;
    for (const auto& e : m_nodes)
      if (e && !e->processed) ++n;
    return n;
  }

  std::size_t sizeIncludingProcessed() const {
    std::shared_lock<std::shared_mutex> lk(m_lock);
    return m_nodes.size();
  }

 private:
  struct Entry {
    CommNode node;
    bool processed;  // non-atomic on purpose in Racy mode (legacy bug)
  };

  void compact() {
    std::unique_lock<std::shared_mutex> lk(m_lock);
    compactLocked();
  }
  void compactLocked() {
    std::vector<std::unique_ptr<Entry>> keep;
    keep.reserve(m_nodes.size());
    for (auto& e : m_nodes)
      if (e && !e->processed) keep.push_back(std::move(e));
    m_nodes.swap(keep);
  }

  Mode m_mode;
  mutable std::shared_mutex m_lock;
  std::vector<std::unique_ptr<Entry>> m_nodes;
};

}  // namespace rmcrt::comm
