#pragma once

/// \file migrator.h
/// Old-grid -> new-grid data migration for the regrid lifecycle. Three
/// transfer modes, matching how each region of a new patch relates to the
/// old patch set:
///
///  * windowed copy — cells the old level's (locally available) patches
///    covered move bit-exactly;
///  * coarse interpolation — newly refined cells with no old fine data
///    take their coarse parent's value (piecewise-constant prolongation),
///    when a coarse-level source is supplied;
///  * restriction — derefined regions project old fine data back onto the
///    coarse level by volume-weighted averaging, so information gathered
///    at fine resolution is not discarded with the patches that held it.
///
/// Migration is rank-local: a rank migrates the data its own
/// DataWarehouse holds. Regions owned by other ranks before the regrid
/// fall back to the coarse interpolation / fill value and are recomputed
/// by the next radiation solve (the engine aligns regrids with radiation
/// steps for exactly this reason).

#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "grid/operators.h"
#include "grid/variable.h"
#include "runtime/data_warehouse.h"

namespace rmcrt::amr {

/// A level-wide image of whatever per-patch data was locally available,
/// plus a per-cell availability mask.
template <typename T>
struct LevelImage {
  grid::CCVariable<T> data;
  grid::CCVariable<std::uint8_t> mask;  ///< 1 where data is valid
};

/// Gather the locally available per-patch copies of \p label on
/// \p level from \p dw into one image (missing patches leave mask 0).
template <typename T>
LevelImage<T> gatherAvailable(const runtime::DataWarehouse& dw,
                              const std::string& label,
                              const grid::Level& level) {
  LevelImage<T> img{grid::CCVariable<T>(level.cells(), T{}),
                    grid::CCVariable<std::uint8_t>(level.cells(), 0)};
  for (const grid::Patch& p : level.patches()) {
    if (!dw.exists(label, p.id())) continue;
    img.data.copyRegion(dw.get<T>(label, p.id()), p.cells());
    for (const IntVector& c : p.cells()) img.mask[c] = 1;
  }
  return img;
}

class Migrator {
 public:
  Migrator(const grid::Grid& oldGrid, const grid::Grid& newGrid)
      : m_old(oldGrid), m_new(newGrid) {}

  /// Migrate one label on \p levelIndex: returns a variable per patch id
  /// in \p newPatchIds, assembled from the old data image per the scheme
  /// above. \p coarseSource (old coarse-level image over the coarse
  /// extent) feeds newly refined cells; without it they get \p fillValue.
  template <typename T>
  std::vector<grid::CCVariable<T>> migratePatchVar(
      const std::string& label, int levelIndex,
      const runtime::DataWarehouse& srcDW,
      const std::vector<int>& newPatchIds,
      const grid::CCVariable<T>* coarseSource = nullptr,
      const T& fillValue = T{}) const {
    const grid::Level& oldLevel = m_old.level(levelIndex);
    const LevelImage<T> img = gatherAvailable<T>(srcDW, label, oldLevel);
    const IntVector rr = m_new.level(levelIndex).refinementRatio();

    std::vector<grid::CCVariable<T>> out;
    out.reserve(newPatchIds.size());
    for (int id : newPatchIds) {
      const grid::Patch* p = m_new.patchById(id);
      grid::CCVariable<T> v(*p, /*numGhost=*/0, fillValue);
      for (const IntVector& c : p->cells()) {
        if (img.mask.window().contains(c) && img.mask[c]) {
          v[c] = img.data[c];
        } else if (coarseSource) {
          const IntVector cc = fdiv(c, rr);
          if (coarseSource->window().contains(cc)) v[c] = (*coarseSource)[cc];
        }
      }
      out.push_back(std::move(v));
    }
    return out;
  }

  /// Restriction for derefined regions: average the old fine image onto
  /// \p coarseVar for every coarse cell whose full fine-child block was
  /// available (partial blocks keep the coarse value).
  template <typename T>
  void restrictToCoarse(const LevelImage<T>& oldFine, int fineLevelIndex,
                        grid::CCVariable<T>& coarseVar) const {
    const IntVector rr = m_old.level(fineLevelIndex).refinementRatio();
    const double inv = 1.0 / static_cast<double>(rr.volume());
    for (const IntVector& cc : coarseVar.window()) {
      const IntVector fLo = cc * rr;
      const CellRange block(fLo, fLo + rr);
      if (!oldFine.mask.window().contains(block)) continue;
      bool full = true;
      for (const IntVector& fc : block) {
        if (!oldFine.mask[fc]) {
          full = false;
          break;
        }
      }
      if (!full) continue;
      T sum{};
      for (const IntVector& fc : block) sum += oldFine.data[fc];
      coarseVar[cc] = static_cast<T>(sum * inv);
    }
  }

 private:
  static IntVector fdiv(const IntVector& a, const IntVector& b) {
    auto f = [](int x, int y) {
      return x >= 0 ? x / y : -((-x + y - 1) / y);
    };
    return {f(a.x(), b.x()), f(a.y(), b.y()), f(a.z(), b.z())};
  }

  const grid::Grid& m_old;
  const grid::Grid& m_new;
};

/// Fill the cells of \p region that no patch of \p fineLevel covers with
/// their coarse parents' values — the prolongation the adaptive trace
/// task applies to its region-of-interest window before ray marching, so
/// rays crossing unrefined space see coarse-accurate (never zero)
/// radiative properties.
template <typename T>
void fillUncoveredFromCoarser(grid::CCVariable<T>& fineVar,
                              const CellRange& region,
                              const grid::Level& fineLevel,
                              const grid::CCVariable<T>& coarseVar) {
  const IntVector rr = fineLevel.refinementRatio();
  grid::CCVariable<std::uint8_t> covered(region, 0);
  for (const auto& o : fineLevel.patchesIntersecting(region))
    for (const IntVector& c : o.region) covered[c] = 1;
  auto f = [](int x, int y) {
    return x >= 0 ? x / y : -((-x + y - 1) / y);
  };
  for (const IntVector& c : region) {
    if (covered[c]) continue;
    const IntVector cc(f(c.x(), rr.x()), f(c.y(), rr.y()), f(c.z(), rr.z()));
    if (coarseVar.window().contains(cc)) fineVar[c] = coarseVar[cc];
  }
}

}  // namespace rmcrt::amr
