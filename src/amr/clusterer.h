#pragma once

/// \file clusterer.h
/// Berger–Rigoutsos-style patch clustering: box flagged cells into a set
/// of rectangular fine-patch candidates. Operates on a tile lattice of
/// minPatchSize cells so every emitted box is a union of whole tiles —
/// guaranteeing the minimum patch edge and (when the refinement ratio
/// divides minPatchSize footprints) refinement-ratio alignment of the
/// fine patches built from the boxes.
///
/// Guarantees on the output:
///  * every flagged cell lies inside exactly one box (coverage),
///  * boxes are pairwise disjoint,
///  * every box edge is at least minPatchSize cells (except where the
///    domain boundary clips the last tile of a non-divisible extent),
///  * when maxPatchSize > 0, no box edge exceeds it,
///  * the box list is sorted canonically (z, y, x of the low corner), so
///    identical flags produce the identical grid on every rank.

#include <vector>

#include "amr/error_estimator.h"
#include "util/range.h"

namespace rmcrt::amr {

struct ClusterConfig {
  /// Minimum patch edge in cells; also the clustering lattice pitch.
  int minPatchSize = 4;
  /// Maximum patch edge in cells (0 = unbounded). Oversized accepted
  /// boxes are chopped into lattice-aligned chunks, which keeps enough
  /// patches for over-decomposition across ranks.
  int maxPatchSize = 0;
  /// Accept a box once flaggedCells / boxCells reaches this ratio;
  /// below it the box is split at a signature hole or inflection.
  double fillRatio = 0.7;
};

/// Cluster the flagged cells of \p flags (whose window must contain
/// \p extent) into boxes within \p extent. Returns an empty vector when
/// nothing is flagged.
std::vector<CellRange> clusterFlags(const FlagField& flags,
                                    const CellRange& extent,
                                    const ClusterConfig& cfg);

}  // namespace rmcrt::amr
