#pragma once

/// \file cost_model.h
/// Measured per-patch cost tracking for dynamic load balancing. Trace
/// tasks record the traced-segment count of each fine patch (the actual
/// work metric: ray path length, not cell count); the model smooths the
/// samples with an exponentially weighted moving average and predicts
/// costs for a regridded patch set by mapping the measured cost *density*
/// (cost per cell) through the spatial overlap of old and new patches.
///
/// Thread-safe: trace tasks on many rank threads record concurrently.
/// The EWMA is keyed by patch id, and per-patch totals are
/// decomposition-independent (the counter-based RNG fixes every ray by
/// (seed, cell, ray)), so every rank reconstructs the identical model —
/// rebalance decisions need no communication.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "grid/grid.h"

namespace rmcrt::amr {

class CostModel {
 public:
  /// \param alpha EWMA weight of the newest sample in (0, 1].
  explicit CostModel(double alpha = 0.5) : m_alpha(alpha) {}

  /// Record one measured cost sample (e.g. Tracer::segmentCount()) for a
  /// patch. EWMA: cost <- alpha * sample + (1 - alpha) * cost.
  void record(int patchId, double sample) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_ewma.find(patchId);
    if (it == m_ewma.end())
      m_ewma.emplace(patchId, sample);
    else
      it->second = m_alpha * sample + (1.0 - m_alpha) * it->second;
  }

  bool has(int patchId) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_ewma.count(patchId) > 0;
  }

  /// Smoothed cost of a patch (0 when never recorded).
  double cost(int patchId) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_ewma.find(patchId);
    return it != m_ewma.end() ? it->second : 0.0;
  }

  std::size_t numRecorded() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_ewma.size();
  }

  /// Measured costs for every patch of \p grid, by patch id. Patches
  /// without a recorded sample get their cell count times the mean
  /// recorded cost density of their level (falling back to a density of
  /// 1 per cell, which reduces the whole vector to cell counts when
  /// nothing has been recorded yet).
  std::vector<double> measuredCosts(const grid::Grid& grid) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::vector<double> out(static_cast<std::size_t>(grid.numPatches()), 0.0);
    for (int l = 0; l < grid.numLevels(); ++l) {
      const grid::Level& level = grid.level(l);
      const double fallback = meanDensityLocked(level);
      for (const grid::Patch& p : level.patches()) {
        auto it = m_ewma.find(p.id());
        out[static_cast<std::size_t>(p.id())] =
            it != m_ewma.end()
                ? it->second
                : fallback * static_cast<double>(p.numCells());
      }
    }
    return out;
  }

  /// Predicted costs for every patch of \p newGrid, by new patch id:
  /// integrate the old grid's measured cost density over each new
  /// patch's footprint (same level), using the mean recorded density for
  /// regions the old patch set did not cover.
  std::vector<double> predictCosts(const grid::Grid& newGrid,
                                   const grid::Grid& oldGrid) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::vector<double> out(static_cast<std::size_t>(newGrid.numPatches()),
                            0.0);
    for (int l = 0; l < newGrid.numLevels(); ++l) {
      if (l >= oldGrid.numLevels()) break;
      const grid::Level& oldLevel = oldGrid.level(l);
      const double fallback = meanDensityLocked(oldLevel);
      for (const grid::Patch& p : newGrid.level(l).patches()) {
        double cost = 0.0;
        std::int64_t covered = 0;
        for (const auto& o : oldLevel.patchesIntersecting(p.cells())) {
          auto it = m_ewma.find(o.patch->id());
          const double density =
              it != m_ewma.end()
                  ? it->second / static_cast<double>(o.patch->numCells())
                  : fallback;
          cost += density * static_cast<double>(o.region.volume());
          covered += o.region.volume();
        }
        cost += fallback * static_cast<double>(p.numCells() - covered);
        out[static_cast<std::size_t>(p.id())] = cost;
      }
    }
    return out;
  }

  /// Re-key the model onto a regridded patch set: seed each new patch's
  /// EWMA with its predicted cost so smoothing continues across the
  /// regrid instead of restarting cold.
  void remapAfterRegrid(const grid::Grid& oldGrid,
                        const grid::Grid& newGrid) {
    const std::vector<double> predicted = predictCosts(newGrid, oldGrid);
    std::lock_guard<std::mutex> lk(m_mutex);
    m_ewma.clear();
    for (int id = 0; id < newGrid.numPatches(); ++id)
      m_ewma.emplace(id, predicted[static_cast<std::size_t>(id)]);
  }

 private:
  /// Mean recorded cost density (cost per cell) over \p level's recorded
  /// patches; 1.0 when none are recorded. Caller holds m_mutex.
  double meanDensityLocked(const grid::Level& level) const {
    double density = 0.0;
    int n = 0;
    for (const grid::Patch& p : level.patches()) {
      auto it = m_ewma.find(p.id());
      if (it == m_ewma.end()) continue;
      density += it->second / static_cast<double>(p.numCells());
      ++n;
    }
    return n > 0 ? density / n : 1.0;
  }

  double m_alpha;
  mutable std::mutex m_mutex;
  std::unordered_map<int, double> m_ewma;
};

}  // namespace rmcrt::amr
