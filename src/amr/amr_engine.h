#pragma once

/// \file amr_engine.h
/// The adaptive regridding engine: drives the full regrid lifecycle the
/// paper's production runs rely on, every N timesteps —
///
///   estimate  -> flag coarse cells from property gradients (+ measured
///                cost density feedback),
///   cluster   -> box the flags into fine patches (Berger–Rigoutsos),
///   regrid    -> emit the new Grid when the patch set changed,
///   migrate   -> move rank-local DataWarehouse data old -> new grid and
///                invalidate the GPU level database,
///   rebalance -> re-partition along the Morton SFC with measured
///                per-patch costs (EWMA of traced segments), guarded by a
///                hysteresis threshold so balance must improve enough to
///                justify moving data,
///   rewire    -> swap the scheduler onto the new grid/balance (the
///                SimulationController then recompiles the task graph).
///
/// Simulated ranks share one engine (matching the shared Grid/
/// LoadBalancer idiom): the first rank to reach a step computes the
/// decision once from deterministic inputs — the analytic property
/// sampler and the decomposition-independent cost model — and every rank
/// applies the same cached result to its own scheduler. No communication
/// is needed to agree.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "amr/clusterer.h"
#include "amr/cost_model.h"
#include "amr/error_estimator.h"
#include "gpu/gpu_data_warehouse.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "util/metrics.h"

namespace rmcrt::amr {

struct AmrConfig {
  /// Regrid cadence in timesteps (<= 0 disables regridding; imbalance
  /// monitoring still runs every step). Align with the radiation
  /// interval: regrids on radiation steps recompute all properties on
  /// the new grid, so migration gaps never feed physics.
  int regridEvery = 4;
  EstimatorConfig estimator;
  ClusterConfig cluster;
  /// Rebalance only when the measured imbalance exceeds this...
  double rebalanceThreshold = 1.10;
  /// ...and the predicted imbalance improves by at least this fraction
  /// of the current value (hysteresis: predicted gain must beat the
  /// migration cost of moving patches between ranks).
  double rebalanceMinGain = 0.05;
  grid::LbStrategy strategy = grid::LbStrategy::Morton;
  /// Labels migrated (rank-locally) across a regrid on every level.
  std::vector<std::string> migrateDoubleLabels = {"divQ"};
};

class AmrEngine {
 public:
  /// Samples radiative properties analytically on a level — the stand-in
  /// for reading the CFD state (core wires initializeProperties here).
  using PropertySampler =
      std::function<void(const grid::Level&, grid::CCVariable<double>& abskg,
                         grid::CCVariable<double>& sigmaT4)>;

  /// \p initial must be a two-level grid (coarse radiation + fine).
  AmrEngine(std::shared_ptr<const grid::Grid> initial,
            std::shared_ptr<const grid::LoadBalancer> lb, int numRanks,
            AmrConfig cfg);

  void setPropertySampler(PropertySampler sampler);
  /// Gauges/counters (rmcrt.lb.imbalance, rmcrt.amr.*) land here.
  void setMetrics(MetricsRegistry* reg);

  CostModel& costModel() { return m_costs; }
  const AmrConfig& config() const { return m_cfg; }

  std::shared_ptr<const grid::Grid> grid() const;
  std::shared_ptr<const grid::LoadBalancer> loadBalancer() const;

  /// Per-rank regrid entry, called between timesteps (the
  /// SimulationController regrid hook). The first caller of a step
  /// computes the decision; every caller applies it to its own
  /// scheduler: migrating its old DataWarehouse onto a new grid,
  /// invalidating \p gpuDW's level database, and rewiring the scheduler.
  /// Returns true when grid or load balance changed this step.
  bool maybeRegrid(int step, runtime::Scheduler& sched,
                   gpu::GpuDataWarehouse* gpuDW = nullptr);

  struct Stats {
    int regrids = 0;
    int rebalances = 0;
    int rebalancesSkipped = 0;  ///< hysteresis vetoed a rebalance
    double lastImbalance = 1.0;
    double lastPredictedImbalance = 1.0;
    std::int64_t fineCoveredCells = 0;
  };
  Stats stats() const;

  /// Latest refinement flags on the coarse level (for VTK inspection);
  /// zero-filled until the first regrid evaluation.
  FlagField latestFlags() const;

 private:
  struct Decision {
    bool regrid = false;
    bool rebalance = false;
    std::shared_ptr<const grid::Grid> oldGrid;
    std::shared_ptr<const grid::Grid> newGrid;
    std::shared_ptr<const grid::LoadBalancer> newLb;
  };

  /// Compute (and cache) the step's decision; caller holds m_mutex.
  void computeDecision(int step);
  std::vector<CellRange> currentFineBoxesCoarse() const;
  grid::CCVariable<double> buildCoarseCostDensity() const;
  void applyToScheduler(const Decision& d, runtime::Scheduler& sched,
                        gpu::GpuDataWarehouse* gpuDW) const;

  AmrConfig m_cfg;
  int m_numRanks;
  PropertySampler m_sampler;
  MetricsRegistry* m_metrics = nullptr;
  CostModel m_costs;

  mutable std::mutex m_mutex;
  std::shared_ptr<const grid::Grid> m_grid;
  std::shared_ptr<const grid::LoadBalancer> m_lb;
  int m_decisionStep = -1;
  Decision m_decision;
  Stats m_stats;
  FlagField m_flags;
};

}  // namespace rmcrt::amr
