#include "amr/amr_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "amr/migrator.h"
#include "util/logger.h"

namespace rmcrt::amr {

AmrEngine::AmrEngine(std::shared_ptr<const grid::Grid> initial,
                     std::shared_ptr<const grid::LoadBalancer> lb,
                     int numRanks, AmrConfig cfg)
    : m_cfg(std::move(cfg)),
      m_numRanks(numRanks),
      m_grid(std::move(initial)),
      m_lb(std::move(lb)) {
  if (!m_grid || m_grid->numLevels() != 2)
    throw std::invalid_argument(
        "AmrEngine: the adaptive lifecycle drives the two-level RMCRT "
        "configuration (coarse radiation level + fine level)");
  if (!m_grid->coarseLevel().uniformlyTiled())
    throw std::invalid_argument(
        "AmrEngine: the coarse radiation level must stay uniformly tiled");
  m_flags = FlagField(m_grid->coarseLevel().cells(), std::uint8_t{0});
}

void AmrEngine::setPropertySampler(PropertySampler sampler) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_sampler = std::move(sampler);
}

void AmrEngine::setMetrics(MetricsRegistry* reg) {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_metrics = reg;
}

std::shared_ptr<const grid::Grid> AmrEngine::grid() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_grid;
}

std::shared_ptr<const grid::LoadBalancer> AmrEngine::loadBalancer() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_lb;
}

AmrEngine::Stats AmrEngine::stats() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_stats;
}

FlagField AmrEngine::latestFlags() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_flags;
}

std::vector<CellRange> AmrEngine::currentFineBoxesCoarse() const {
  const grid::Level& fine = m_grid->fineLevel();
  const IntVector rr = fine.refinementRatio();
  std::vector<CellRange> boxes;
  boxes.reserve(fine.numPatches());
  for (const grid::Patch& p : fine.patches())
    boxes.push_back(p.cells().coarsened(rr));
  std::sort(boxes.begin(), boxes.end(),
            [](const CellRange& a, const CellRange& b) {
              if (a.low().z() != b.low().z()) return a.low().z() < b.low().z();
              if (a.low().y() != b.low().y()) return a.low().y() < b.low().y();
              return a.low().x() < b.low().x();
            });
  return boxes;
}

grid::CCVariable<double> AmrEngine::buildCoarseCostDensity() const {
  const grid::Level& coarse = m_grid->coarseLevel();
  const grid::Level& fine = m_grid->fineLevel();
  const IntVector rr = fine.refinementRatio();
  grid::CCVariable<double> density(coarse.cells(), 0.0);
  for (const grid::Patch& p : fine.patches()) {
    if (!m_costs.has(p.id())) continue;
    const double d =
        m_costs.cost(p.id()) / static_cast<double>(p.numCells());
    const CellRange footprint =
        p.cells().coarsened(rr).intersect(coarse.cells());
    for (const IntVector& c : footprint) density[c] = d;
  }
  return density;
}

void AmrEngine::computeDecision(int step) {
  m_decision = Decision{};
  m_decision.oldGrid = m_grid;

  // Imbalance monitoring runs every step so the gauge is always live in
  // --metrics-out output, regrid step or not.
  const std::vector<double> measured = m_costs.measuredCosts(*m_grid);
  const double imbalance = m_lb->imbalance(*m_grid, measured);
  m_stats.lastImbalance = imbalance;
  m_stats.fineCoveredCells = m_grid->fineLevel().coveredCells();
  if (m_metrics) {
    m_metrics->setGauge("rmcrt.lb.imbalance", imbalance);
    m_metrics->setGauge(
        "rmcrt.amr.fine_cells",
        static_cast<double>(m_stats.fineCoveredCells));
    m_metrics->setGauge(
        "rmcrt.amr.fine_patches",
        static_cast<double>(m_grid->fineLevel().numPatches()));
  }

  const bool regridStep =
      m_cfg.regridEvery > 0 && step > 0 && step % m_cfg.regridEvery == 0;
  if (!regridStep || !m_sampler) return;

  // Estimate + cluster on the coarse level.
  const grid::Level& coarse = m_grid->coarseLevel();
  grid::CCVariable<double> abskg(coarse.cells(), 0.0);
  grid::CCVariable<double> sigmaT4(coarse.cells(), 0.0);
  m_sampler(coarse, abskg, sigmaT4);
  grid::CCVariable<double> density;
  const grid::CCVariable<double>* densityPtr = nullptr;
  if (m_cfg.estimator.costBias > 0.0) {
    density = buildCoarseCostDensity();
    densityPtr = &density;
  }
  m_flags =
      estimateRefinementFlags(coarse, abskg, sigmaT4, m_cfg.estimator,
                              densityPtr);
  const std::vector<CellRange> boxes =
      clusterFlags(m_flags, coarse.cells(), m_cfg.cluster);

  if (boxes != currentFineBoxesCoarse()) {
    // The flagged region changed: emit a new grid, predict per-patch
    // costs by density transfer, and build the measured-cost balance.
    const IntVector rr = m_grid->fineLevel().refinementRatio();
    auto newGrid = grid::Grid::makeAdaptive(
        m_grid->physLow(), m_grid->physHigh(), coarse.cells().size(),
        coarse.patchSize(), rr, boxes);
    const std::vector<double> predicted =
        m_costs.predictCosts(*newGrid, *m_grid);
    auto newLb = std::make_shared<grid::LoadBalancer>(
        *newGrid, m_numRanks, predicted, m_cfg.strategy);
    m_stats.lastPredictedImbalance = newLb->imbalance(*newGrid, predicted);
    m_costs.remapAfterRegrid(*m_grid, *newGrid);

    m_decision.regrid = true;
    m_decision.newGrid = newGrid;
    m_decision.newLb = newLb;
    m_grid = std::move(newGrid);
    m_lb = std::move(newLb);
    ++m_stats.regrids;
    if (m_metrics) {
      m_metrics->addCounter("rmcrt.amr.regrids", 1);
      m_metrics->setGauge("rmcrt.amr.predicted_imbalance",
                          m_stats.lastPredictedImbalance);
      m_metrics->setGauge(
          "rmcrt.amr.fine_cells",
          static_cast<double>(m_grid->fineLevel().coveredCells()));
      m_metrics->setGauge(
          "rmcrt.amr.fine_patches",
          static_cast<double>(m_grid->fineLevel().numPatches()));
    }
    m_stats.fineCoveredCells = m_grid->fineLevel().coveredCells();
    RMCRT_INFO("AMR regrid at step "
               << step << ": " << m_grid->fineLevel().numPatches()
               << " fine patches, " << m_stats.fineCoveredCells
               << " fine cells, predicted imbalance "
               << m_stats.lastPredictedImbalance);
    return;
  }

  // Same patch set: rebalance on measured costs, with hysteresis.
  if (imbalance > m_cfg.rebalanceThreshold) {
    auto candidate = std::make_shared<grid::LoadBalancer>(
        *m_grid, m_numRanks, measured, m_cfg.strategy);
    const double predicted = candidate->imbalance(*m_grid, measured);
    if (imbalance - predicted > m_cfg.rebalanceMinGain * imbalance) {
      m_stats.lastPredictedImbalance = predicted;
      m_decision.rebalance = true;
      m_decision.newGrid = m_grid;
      m_decision.newLb = candidate;
      m_lb = std::move(candidate);
      ++m_stats.rebalances;
      if (m_metrics) {
        m_metrics->addCounter("rmcrt.amr.rebalances", 1);
        m_metrics->setGauge("rmcrt.amr.predicted_imbalance", predicted);
      }
      RMCRT_INFO("AMR rebalance at step " << step << ": imbalance "
                                          << imbalance << " -> predicted "
                                          << predicted);
    } else {
      ++m_stats.rebalancesSkipped;
      if (m_metrics)
        m_metrics->addCounter("rmcrt.amr.rebalances_skipped", 1);
    }
  }
}

void AmrEngine::applyToScheduler(const Decision& d, runtime::Scheduler& sched,
                                 gpu::GpuDataWarehouse* gpuDW) const {
  if (d.regrid) {
    // Migrate this rank's locally available old data onto the new grid
    // before the grids swap under it. Old patch ids are dead after the
    // clear; migrated variables re-enter under new ids.
    const grid::Grid& oldGrid = sched.grid();
    Migrator migrator(oldGrid, *d.newGrid);
    runtime::DataWarehouse& oldDW = sched.oldDW();

    struct Migrated {
      std::string label;
      int patchId;
      grid::CCVariable<double> var;
    };
    std::vector<Migrated> staged;
    for (const std::string& label : m_cfg.migrateDoubleLabels) {
      for (int l = 0; l < d.newGrid->numLevels(); ++l) {
        std::vector<int> localIds;
        for (const grid::Patch& p : d.newGrid->level(l).patches())
          if (d.newLb->rankOf(p.id()) == sched.rank())
            localIds.push_back(p.id());
        if (localIds.empty()) continue;
        auto vars = migrator.migratePatchVar<double>(label, l, oldDW,
                                                     localIds);
        for (std::size_t i = 0; i < localIds.size(); ++i)
          staged.push_back(
              Migrated{label, localIds[i], std::move(vars[i])});
      }
    }
    // Drop everything keyed by old-grid ids/windows (stale region keys
    // from the previous step could otherwise shadow freshly staged data
    // on the new grid), then land the migrated variables.
    oldDW.clear();
    for (Migrated& m : staged)
      oldDW.put(m.label, m.patchId, std::move(m.var));
    sched.newDW().clear();

    if (gpuDW)
      for (int l = 0; l < d.newGrid->numLevels(); ++l)
        gpuDW->invalidateLevel(l);

    sched.setGrid(d.newGrid, d.newLb);
    return;
  }
  if (d.rebalance) sched.setGrid(d.newGrid, d.newLb);
}

bool AmrEngine::maybeRegrid(int step, runtime::Scheduler& sched,
                            gpu::GpuDataWarehouse* gpuDW) {
  Decision d;
  {
    std::lock_guard<std::mutex> lk(m_mutex);
    if (m_decisionStep != step) {
      computeDecision(step);
      m_decisionStep = step;
    }
    d = m_decision;
  }
  if (!d.regrid && !d.rebalance) return false;
  applyToScheduler(d, sched, gpuDW);
  return true;
}

}  // namespace rmcrt::amr
