#include "amr/clusterer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rmcrt::amr {

namespace {

/// Flagged-cell counts per lattice tile, plus the tile->cell mapping.
struct TileGrid {
  CellRange extent;     ///< cell extent being clustered
  int pitch = 1;        ///< lattice pitch (minPatchSize)
  IntVector tiles{0};   ///< lattice dimensions
  std::vector<std::int64_t> counts;  ///< flagged cells per tile

  std::int64_t& count(const IntVector& t) {
    return counts[static_cast<std::size_t>(
        t.x() + tiles.x() * (static_cast<std::int64_t>(t.y()) +
                             static_cast<std::int64_t>(tiles.y()) * t.z()))];
  }
  std::int64_t count(const IntVector& t) const {
    return counts[static_cast<std::size_t>(
        t.x() + tiles.x() * (static_cast<std::int64_t>(t.y()) +
                             static_cast<std::int64_t>(tiles.y()) * t.z()))];
  }

  /// Cells covered by a tile-coordinate box (clipped to the extent).
  CellRange cellsOf(const CellRange& tileBox) const {
    const IntVector lo = extent.low() + tileBox.low() * IntVector(pitch);
    const IntVector hi = extent.low() + tileBox.high() * IntVector(pitch);
    return CellRange(lo, min(hi, extent.high()));
  }
};

TileGrid buildTileGrid(const FlagField& flags, const CellRange& extent,
                       int pitch) {
  TileGrid tg;
  tg.extent = extent;
  tg.pitch = pitch;
  const IntVector n = extent.size();
  tg.tiles = IntVector((n.x() + pitch - 1) / pitch,
                       (n.y() + pitch - 1) / pitch,
                       (n.z() + pitch - 1) / pitch);
  tg.counts.assign(static_cast<std::size_t>(tg.tiles.volume()), 0);
  for (const IntVector& c : extent) {
    if (!flags[c]) continue;
    const IntVector rel = c - extent.low();
    ++tg.count(IntVector(rel.x() / pitch, rel.y() / pitch, rel.z() / pitch));
  }
  return tg;
}

/// Shrink a tile box to the bounding box of its flagged tiles; empty
/// CellRange when none are flagged.
CellRange shrinkToFlagged(const TileGrid& tg, const CellRange& box) {
  IntVector lo = box.high();
  IntVector hi = box.low();
  for (const IntVector& t : box) {
    if (tg.count(t) <= 0) continue;
    lo = min(lo, t);
    hi = max(hi, t + IntVector(1));
  }
  return lo.x() < hi.x() ? CellRange(lo, hi) : CellRange();
}

std::int64_t flaggedCellsIn(const TileGrid& tg, const CellRange& box) {
  std::int64_t n = 0;
  for (const IntVector& t : box) n += tg.count(t);
  return n;
}

/// Flagged-tile-count signature along \p axis (sums over the
/// perpendicular planes), indexed from box.low()[axis].
std::vector<std::int64_t> signature(const TileGrid& tg, const CellRange& box,
                                    int axis) {
  std::vector<std::int64_t> sig(
      static_cast<std::size_t>(box.size()[axis]), 0);
  for (const IntVector& t : box)
    sig[static_cast<std::size_t>(t[axis] - box.low()[axis])] += tg.count(t);
  return sig;
}

/// Berger–Rigoutsos split position along \p axis, as an offset in
/// (0, len): prefer the signature hole nearest the center, else the
/// strongest Laplacian inflection, else the midpoint. Returns 0 when the
/// axis cannot split (len < 2).
int splitOffset(const std::vector<std::int64_t>& sig) {
  const int len = static_cast<int>(sig.size());
  if (len < 2) return 0;
  // Holes: a zero plane splits cleanly (the halves then shrink away
  // from it). Choose the one nearest the center.
  int bestHole = -1;
  for (int i = 1; i < len - 1; ++i) {
    if (sig[static_cast<std::size_t>(i)] != 0) continue;
    if (bestHole < 0 ||
        std::abs(2 * i - len) < std::abs(2 * bestHole - len))
      bestHole = i;
  }
  if (bestHole > 0) return bestHole;
  // Inflections of the discrete Laplacian D[i] = s[i-1] - 2 s[i] + s[i+1]:
  // split where D changes sign with the largest jump.
  int best = 0;
  std::int64_t bestJump = -1;
  auto lap = [&sig](int i) {
    return sig[static_cast<std::size_t>(i - 1)] -
           2 * sig[static_cast<std::size_t>(i)] +
           sig[static_cast<std::size_t>(i + 1)];
  };
  for (int i = 2; i < len - 1; ++i) {
    const std::int64_t a = lap(i - 1);
    const std::int64_t b = lap(i);
    if ((a < 0) == (b < 0)) continue;
    const std::int64_t jump = std::abs(a - b);
    if (jump > bestJump) {
      bestJump = jump;
      best = i;
    }
  }
  if (best > 0) return best;
  return len / 2;
}

void cluster(const TileGrid& tg, const CellRange& rawBox, double fillRatio,
             std::vector<CellRange>& out) {
  const CellRange box = shrinkToFlagged(tg, rawBox);
  if (box.empty()) return;

  const CellRange cellBox = tg.cellsOf(box);
  const std::int64_t flagged = flaggedCellsIn(tg, box);
  const IntVector len = box.size();
  const bool splittable = len.x() > 1 || len.y() > 1 || len.z() > 1;
  if (!splittable ||
      static_cast<double>(flagged) >=
          fillRatio * static_cast<double>(cellBox.volume())) {
    out.push_back(cellBox);
    return;
  }

  // Try axes longest-first so splits keep boxes chunky.
  int axes[3] = {0, 1, 2};
  std::sort(axes, axes + 3,
            [&len](int a, int b) { return len[a] > len[b]; });
  for (int axis : axes) {
    if (len[axis] < 2) continue;
    const int off = splitOffset(signature(tg, box, axis));
    if (off <= 0 || off >= len[axis]) continue;
    IntVector midHigh = box.high();
    midHigh[axis] = box.low()[axis] + off;
    IntVector midLow = box.low();
    midLow[axis] = box.low()[axis] + off;
    cluster(tg, CellRange(box.low(), midHigh), fillRatio, out);
    cluster(tg, CellRange(midLow, box.high()), fillRatio, out);
    return;
  }
  out.push_back(cellBox);  // unreachable in practice; defensive
}

/// Chop an accepted tile box into chunks of at most \p maxTiles tiles per
/// axis (maxPatchSize enforcement).
void chopBox(const TileGrid& tg, const CellRange& tileBox, int maxTiles,
             std::vector<CellRange>& out) {
  const IntVector len = tileBox.size();
  const IntVector nChunks((len.x() + maxTiles - 1) / maxTiles,
                          (len.y() + maxTiles - 1) / maxTiles,
                          (len.z() + maxTiles - 1) / maxTiles);
  for (int cz = 0; cz < nChunks.z(); ++cz) {
    for (int cy = 0; cy < nChunks.y(); ++cy) {
      for (int cx = 0; cx < nChunks.x(); ++cx) {
        const IntVector lo =
            tileBox.low() + IntVector(cx, cy, cz) * IntVector(maxTiles);
        const IntVector hi =
            min(lo + IntVector(maxTiles), tileBox.high());
        out.push_back(tg.cellsOf(CellRange(lo, hi)));
      }
    }
  }
}

}  // namespace

std::vector<CellRange> clusterFlags(const FlagField& flags,
                                    const CellRange& extent,
                                    const ClusterConfig& cfg) {
  assert(flags.window().contains(extent) &&
         "flags must cover the clustered extent");
  const int pitch = std::max(1, cfg.minPatchSize);
  const TileGrid tg = buildTileGrid(flags, extent, pitch);

  std::vector<CellRange> accepted;
  cluster(tg, CellRange(IntVector(0), tg.tiles), cfg.fillRatio, accepted);

  std::vector<CellRange> boxes;
  if (cfg.maxPatchSize > 0) {
    const int maxTiles = std::max(1, cfg.maxPatchSize / pitch);
    for (const CellRange& cellBox : accepted) {
      // Back to tile coordinates for lattice-aligned chopping.
      const IntVector rel = cellBox.low() - extent.low();
      const IntVector tLo(rel.x() / pitch, rel.y() / pitch, rel.z() / pitch);
      const IntVector relHi = cellBox.high() - extent.low();
      const IntVector tHi((relHi.x() + pitch - 1) / pitch,
                          (relHi.y() + pitch - 1) / pitch,
                          (relHi.z() + pitch - 1) / pitch);
      chopBox(tg, CellRange(tLo, tHi), maxTiles, boxes);
    }
  } else {
    boxes = std::move(accepted);
  }

  std::sort(boxes.begin(), boxes.end(),
            [](const CellRange& a, const CellRange& b) {
              if (a.low().z() != b.low().z()) return a.low().z() < b.low().z();
              if (a.low().y() != b.low().y()) return a.low().y() < b.low().y();
              return a.low().x() < b.low().x();
            });
  return boxes;
}

}  // namespace rmcrt::amr
