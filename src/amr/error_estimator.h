#pragma once

/// \file error_estimator.h
/// Refinement-flag generation for the adaptive regridding engine: mark
/// the coarse cells whose radiative state varies fast enough that the
/// coarse radiation mesh under-resolves it. The indicator is the
/// normalized one-sided gradient of sigmaT4/pi and of the absorption
/// coefficient (the two fields the RMCRT integral consumes), optionally
/// biased by a measured per-cell cost density so regions that dominate
/// traced-segment counts refine earlier — the feedback loop from the
/// per-patch ray/segment counters into the mesh.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "grid/level.h"
#include "grid/variable.h"

namespace rmcrt::amr {

/// Per-cell refinement flags on one level (1 = refine candidate).
using FlagField = grid::CCVariable<std::uint8_t>;

struct EstimatorConfig {
  /// Flag a cell when its normalized gradient indicator exceeds this
  /// (the --regrid-threshold knob; lower = more refinement).
  double refineThreshold = 0.15;
  /// Cost feedback strength: where the measured cost density is d times
  /// the mean, the effective threshold divides by (1 + costBias * d).
  /// 0 disables the feedback (pure gradient flagging).
  double costBias = 0.0;
};

/// Flag cells of \p level (typically the coarse radiation level) from the
/// given property fields. Both variables must cover level.cells();
/// \p costDensity, when non-null, is a per-cell measured cost density
/// over the same window.
inline FlagField estimateRefinementFlags(
    const grid::Level& level, const grid::CCVariable<double>& abskg,
    const grid::CCVariable<double>& sigmaT4, const EstimatorConfig& cfg,
    const grid::CCVariable<double>* costDensity = nullptr) {
  const grid::CellRange& cells = level.cells();
  FlagField flags(cells, std::uint8_t{0});

  // Global field scales so the indicator is dimensionless and one
  // threshold serves both fields.
  auto scaleOf = [&cells](const grid::CCVariable<double>& v) {
    double s = 0.0;
    for (const IntVector& c : cells) s = std::max(s, std::abs(v[c]));
    return s > 0.0 ? s : 1.0;
  };
  const double absScale = scaleOf(abskg);
  const double sigScale = scaleOf(sigmaT4);

  double meanDensity = 0.0;
  if (costDensity) {
    std::int64_t n = 0;
    for (const IntVector& c : cells) {
      if ((*costDensity)[c] > 0.0) {
        meanDensity += (*costDensity)[c];
        ++n;
      }
    }
    meanDensity = n > 0 ? meanDensity / static_cast<double>(n) : 0.0;
  }

  auto indicator = [&cells](const grid::CCVariable<double>& v,
                            const IntVector& c, double scale) {
    double g = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
      IntVector e(0);
      e[axis] = 1;
      const IntVector hi = c + e;
      const IntVector lo = c - e;
      if (cells.contains(hi)) g = std::max(g, std::abs(v[hi] - v[c]));
      if (cells.contains(lo)) g = std::max(g, std::abs(v[c] - v[lo]));
    }
    return g / scale;
  };

  for (const IntVector& c : cells) {
    double threshold = cfg.refineThreshold;
    if (costDensity && cfg.costBias > 0.0 && meanDensity > 0.0) {
      const double d = (*costDensity)[c] / meanDensity;
      if (d > 0.0) threshold /= 1.0 + cfg.costBias * d;
    }
    const double ind = std::max(indicator(abskg, c, absScale),
                                indicator(sigmaT4, c, sigScale));
    if (ind > threshold) flags[c] = 1;
  }
  return flags;
}

}  // namespace rmcrt::amr
