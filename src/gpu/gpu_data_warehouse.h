#pragma once

/// \file gpu_data_warehouse.h
/// The GPU DataWarehouse with the paper's *level database* (Section
/// III-C): alongside the per-patch variable database, a per-mesh-level
/// database stores a SINGLE device copy of shared global radiative
/// properties (coarse abskg, sigmaT4, cellType). Multiple fine-patch tasks
/// resident on the device reference that one copy instead of each staging
/// its own — "effectively short-circuit[ing] the creation of these
/// redundant global copies ... and their subsequent transfer across the
/// PCIe bus."
///
/// For the D2 ablation the class also supports the pre-paper behaviour
/// (Mode::PerPatchCopies), where every patch task uploads a private copy
/// of the coarse level data; bench_gpu_dw contrasts device-memory and
/// PCIe traffic between the two and shows where per-patch copies blow the
/// 6 GB budget.

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gpu/gpu_device.h"
#include "grid/variable.h"
#include "util/range.h"

namespace rmcrt::gpu {

/// A variable resident in device memory.
struct DeviceVar {
  void* devPtr = nullptr;
  grid::CellRange window;
  std::size_t bytes = 0;
  std::size_t elemSize = 0;

  std::int64_t offset(const IntVector& c) const {
    const IntVector rel = c - window.low();
    const IntVector sz = window.size();
    return rel.x() +
           static_cast<std::int64_t>(sz.x()) *
               (rel.y() + static_cast<std::int64_t>(sz.y()) * rel.z());
  }

  /// Typed device-side view (our "device" memory is host-addressable).
  template <typename T>
  T* as() const {
    assert(sizeof(T) == elemSize);
    return static_cast<T*>(devPtr);
  }
};

/// GPU-side variable database for one device.
class GpuDataWarehouse {
 public:
  enum class Mode {
    LevelDatabase,   ///< one shared coarse copy per level (the paper)
    PerPatchCopies,  ///< redundant per-patch coarse copies (pre-paper)
  };

  explicit GpuDataWarehouse(GpuDevice& dev, Mode mode = Mode::LevelDatabase)
      : m_dev(dev), m_mode(mode) {}

  ~GpuDataWarehouse() { clear(); }

  GpuDataWarehouse(const GpuDataWarehouse&) = delete;
  GpuDataWarehouse& operator=(const GpuDataWarehouse&) = delete;

  Mode mode() const { return m_mode; }
  GpuDevice& device() { return m_dev; }

  /// --- per-patch variables ---------------------------------------------

  /// Upload a host variable for one patch (H2D through \p stream if given,
  /// else synchronously). Replaces any existing copy.
  template <typename T>
  DeviceVar& putPatchVar(const std::string& label, int patchId,
                         const grid::CCVariable<T>& host,
                         GpuStream* stream = nullptr) {
    return putPatchVarRaw(label, patchId, host.data(), host.window(),
                          sizeof(T), stream);
  }

  /// Untyped upload for records that are not CCVariables — the fused
  /// PackedCell arrays the ray-march kernel consumes. \p hostData must
  /// stay alive until the stream's copy drains.
  DeviceVar& putPatchVarRaw(const std::string& label, int patchId,
                            const void* hostData,
                            const grid::CellRange& window,
                            std::size_t elemSize,
                            GpuStream* stream = nullptr) {
    std::lock_guard<std::mutex> lk(m_mutex);
    DeviceVar& dv = allocInMapLocked(m_patchVars, key(label, patchId),
                                     window, elemSize);
    upload(dv, hostData, stream);
    return dv;
  }

  /// Allocate an uninitialized device variable for task output (divQ).
  DeviceVar& allocatePatchVar(const std::string& label, int patchId,
                              const grid::CellRange& window,
                              std::size_t elemSize) {
    std::lock_guard<std::mutex> lk(m_mutex);
    return allocInMapLocked(m_patchVars, key(label, patchId), window,
                            elemSize);
  }

  DeviceVar& getPatchVar(const std::string& label, int patchId) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_patchVars.find(key(label, patchId));
    assert(it != m_patchVars.end() && "patch var not on device");
    return it->second;
  }

  bool hasPatchVar(const std::string& label, int patchId) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_patchVars.count(key(label, patchId)) > 0;
  }

  /// Download a patch variable back to the host (D2H).
  template <typename T>
  void fetchPatchVar(const std::string& label, int patchId,
                     grid::CCVariable<T>& host, GpuStream* stream = nullptr) {
    DeviceVar dv;
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      auto it = m_patchVars.find(key(label, patchId));
      assert(it != m_patchVars.end());
      dv = it->second;
    }
    assert(host.window() == dv.window);
    if (stream)
      stream->enqueueCopyToHost(host.data(), dv.devPtr, dv.bytes);
    else
      m_dev.copyToHost(host.data(), dv.devPtr, dv.bytes);
  }

  void removePatchVar(const std::string& label, int patchId) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_patchVars.find(key(label, patchId));
    if (it != m_patchVars.end()) {
      m_dev.free(it->second.devPtr, it->second.bytes);
      m_patchVars.erase(it);
    }
  }

  /// --- the level database (paper Section III-C) -------------------------

  /// Get (or create on first call) the single shared device copy of a
  /// per-level variable. In LevelDatabase mode the upload happens exactly
  /// once per (label, level); every later caller receives the same
  /// DeviceVar. In PerPatchCopies mode the caller must pass its patch id
  /// and receives a private copy, uploaded per patch — the redundant
  /// pre-paper behaviour.
  template <typename T>
  DeviceVar& getOrUploadLevelVar(const std::string& label, int levelIndex,
                                 const grid::CCVariable<T>& host,
                                 int patchIdForPerPatchMode = -1,
                                 GpuStream* stream = nullptr) {
    return getOrUploadLevelVarRaw(label, levelIndex, host.data(),
                                  host.window(), sizeof(T),
                                  patchIdForPerPatchMode, stream);
  }

  /// Untyped level-database upload (fused PackedCell record arrays). Same
  /// once-per-(label, level) semantics as the typed overload; \p hostData
  /// is only read when this call actually uploads, and must then stay
  /// alive until the stream's copy drains.
  DeviceVar& getOrUploadLevelVarRaw(const std::string& label, int levelIndex,
                                    const void* hostData,
                                    const grid::CellRange& window,
                                    std::size_t elemSize,
                                    int patchIdForPerPatchMode = -1,
                                    GpuStream* stream = nullptr) {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::string k;
    if (m_mode == Mode::LevelDatabase) {
      k = label + "@L" + std::to_string(levelIndex);
    } else {
      assert(patchIdForPerPatchMode >= 0 &&
             "per-patch mode requires a patch id");
      k = label + "@L" + std::to_string(levelIndex) + "@p" +
          std::to_string(patchIdForPerPatchMode);
    }
    auto it = m_levelVars.find(k);
    if (it != m_levelVars.end()) return it->second;
    DeviceVar& dv = allocInMapLocked(m_levelVars, k, window, elemSize);
    upload(dv, hostData, stream);
    return dv;
  }

  bool hasLevelVar(const std::string& label, int levelIndex) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_levelVars.count(label + "@L" + std::to_string(levelIndex)) > 0;
  }

  std::size_t numLevelVarCopies() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_levelVars.size();
  }

  /// Evict the whole level database, returning the bytes freed. The OOM
  /// recovery ladder uses this as its last eviction step: level vars are
  /// re-uploaded on demand by the next getOrUploadLevelVar, so dropping
  /// them trades PCIe traffic for headroom (most valuable in
  /// PerPatchCopies mode, where stale per-patch copies accumulate).
  std::size_t evictLevelVars() {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::size_t freed = 0;
    for (auto& [k, dv] : m_levelVars) {
      m_dev.free(dv.devPtr, dv.bytes);
      freed += dv.bytes;
    }
    m_levelVars.clear();
    return freed;
  }

  /// Evict the level-database entries of one level, returning the bytes
  /// freed. The regrid path calls this after migrating host data: the
  /// device copies of coarse properties describe the old grid and must
  /// rebuild (re-upload on the next getOrUploadLevelVar) against the new
  /// one. Covers PerPatchCopies-mode keys too (label@L<i>@p<id>).
  std::size_t invalidateLevel(int levelIndex) {
    std::lock_guard<std::mutex> lk(m_mutex);
    const std::string tag = "@L" + std::to_string(levelIndex);
    std::size_t freed = 0;
    for (auto it = m_levelVars.begin(); it != m_levelVars.end();) {
      const std::string& k = it->first;
      const std::size_t pos = k.find(tag);
      const bool match =
          pos != std::string::npos &&
          (pos + tag.size() == k.size() || k[pos + tag.size()] == '@');
      if (match) {
        m_dev.free(it->second.devPtr, it->second.bytes);
        freed += it->second.bytes;
        it = m_levelVars.erase(it);
      } else {
        ++it;
      }
    }
    return freed;
  }

  /// --- checkpoint serialization ----------------------------------------

  /// Visit every level-database entry as f(key, deviceVar). Device memory
  /// is host-addressable here, so a snapshot writer may read
  /// dv.devPtr[0..bytes) directly under this walk. Do not upload from \p f.
  template <typename F>
  void forEachLevelVar(F&& f) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (const auto& [k, dv] : m_levelVars) f(k, dv);
  }

  /// Checkpoint-restore path: recreate a level-database entry under its
  /// serialized key (bypassing the mode-dependent key construction of
  /// getOrUploadLevelVarRaw — the key already encodes the mode it was
  /// saved under) and upload \p hostData synchronously.
  DeviceVar& restoreLevelVarRaw(const std::string& k,
                                const grid::CellRange& window,
                                std::size_t elemSize, const void* hostData) {
    std::lock_guard<std::mutex> lk(m_mutex);
    DeviceVar& dv = allocInMapLocked(m_levelVars, k, window, elemSize);
    upload(dv, hostData, nullptr);
    return dv;
  }

  /// Free every device variable.
  void clear() {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (auto& [k, dv] : m_patchVars) m_dev.free(dv.devPtr, dv.bytes);
    for (auto& [k, dv] : m_levelVars) m_dev.free(dv.devPtr, dv.bytes);
    m_patchVars.clear();
    m_levelVars.clear();
  }

  /// Free only per-patch variables (a patch task's epilogue), keeping the
  /// shared level database resident for the next task — the reuse the
  /// paper's design enables.
  void clearPatchVars() {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (auto& [k, dv] : m_patchVars) m_dev.free(dv.devPtr, dv.bytes);
    m_patchVars.clear();
  }

 private:
  static std::string key(const std::string& label, int patchId) {
    return label + "@p" + std::to_string(patchId);
  }

  DeviceVar& allocSlotLocked(DeviceVar& slot, const grid::CellRange& window,
                             std::size_t elemSize) {
    if (slot.devPtr) {
      m_dev.free(slot.devPtr, slot.bytes);
      slot.devPtr = nullptr;  // allocate may throw; never leave a stale ptr
    }
    slot.window = window;
    slot.elemSize = elemSize;
    slot.bytes = static_cast<std::size_t>(window.volume()) * elemSize;
    slot.devPtr = m_dev.allocate(slot.bytes);
    return slot;
  }

  /// Allocate into map slot \p k; a failed allocation (DeviceOutOfMemory)
  /// removes the slot entirely so lookups never see a null entry.
  DeviceVar& allocInMapLocked(std::map<std::string, DeviceVar>& vars,
                              const std::string& k,
                              const grid::CellRange& window,
                              std::size_t elemSize) {
    auto [it, inserted] = vars.try_emplace(k);
    try {
      return allocSlotLocked(it->second, window, elemSize);
    } catch (...) {
      vars.erase(it);
      throw;
    }
  }

  void upload(DeviceVar& dv, const void* hostData, GpuStream* stream) {
    if (stream)
      stream->enqueueCopyToDevice(dv.devPtr, hostData, dv.bytes);
    else
      m_dev.copyToDevice(dv.devPtr, hostData, dv.bytes);
  }

  GpuDevice& m_dev;
  Mode m_mode;
  mutable std::mutex m_mutex;
  std::map<std::string, DeviceVar> m_patchVars;
  std::map<std::string, DeviceVar> m_levelVars;
};

}  // namespace rmcrt::gpu
