#pragma once

/// \file gpu_task_executor.h
/// Concurrent execution of many patch tasks on one simulated device —
/// the paper's Section III-C execution pattern: "Data for these GPU tasks
/// can be simultaneously copied to-and-from the device as multiple RMCRT
/// kernels run simultaneously. CUDA Streams, managed by the Uintah
/// infrastructure provide additional concurrency."
///
/// Each patch task is a 3-stage pipeline (H2D stage -> kernel -> D2H
/// stage) bound to its own stream; the executor bounds the number of
/// RESIDENT tasks (those holding device memory) so the footprint stays
/// within the device budget even with thousands of queued patches —
/// the over-decomposition regime of the scaling studies.
///
/// Failure handling: a task whose stage throws (e.g. DeviceOutOfMemory)
/// or whose stream reports a captured operation error at retirement is
/// rerouted to its `fallback` callable when one is provided — the
/// graceful-degradation hook the RMCRT component uses to run the CPU
/// tracer for that patch. Without a fallback the error propagates to the
/// caller after the remaining resident streams have drained.

#include <functional>
#include <memory>
#include <vector>

#include "gpu/gpu_device.h"

namespace rmcrt::gpu {

/// One patch task's callbacks. All three run on device workers via the
/// task's stream, in order; `stage` typically uploads inputs and
/// allocates outputs, `finish` downloads results and frees per-patch
/// device memory. `fallback` (optional) runs on the calling thread when
/// the device path failed; it must produce the same results by other
/// means (e.g. the CPU tracer).
struct GpuPatchTask {
  std::function<void(GpuStream&)> stage;
  std::function<void()> kernel;
  std::function<void(GpuStream&)> finish;
  std::function<void()> fallback;
};

/// Execution statistics.
struct ExecutorStats {
  int tasksRun = 0;
  int maxConcurrentResident = 0;
  int deviceErrors = 0;   ///< tasks whose device path threw
  int fallbacksRun = 0;   ///< of those, recovered via their fallback
};

/// Publish one batch's executor stats into \p reg as gauges under
/// \p prefix (e.g. "gpu.executor.").
inline void exportMetrics(const ExecutorStats& s, MetricsRegistry& reg,
                          const std::string& prefix) {
  reg.setGauge(prefix + "tasks_run", s.tasksRun);
  reg.setGauge(prefix + "max_concurrent_resident", s.maxConcurrentResident);
  reg.setGauge(prefix + "device_errors", s.deviceErrors);
  reg.setGauge(prefix + "fallbacks_run", s.fallbacksRun);
}

/// Runs a batch of patch tasks with at most \p maxResident concurrently
/// holding device resources. Blocking call; returns when every task has
/// finished.
///
/// Rationale for the bound: without it, staging all N patches' inputs
/// before the first kernel completes would exceed device memory at
/// production patch counts — this is the executor-level counterpart of
/// the level database's memory discipline.
ExecutorStats runGpuTasks(GpuDevice& device,
                          const std::vector<GpuPatchTask>& tasks,
                          int maxResident = 4);

}  // namespace rmcrt::gpu
