#include "gpu/gpu_device.h"

#include <cassert>
#include <utility>

#include "util/logger.h"
#include "util/trace_recorder.h"

namespace rmcrt::gpu {

GpuDevice::GpuDevice(const Config& cfg)
    : m_cfg(cfg),
      m_workers(static_cast<std::size_t>(
          cfg.workerSlots > 0 ? cfg.workerSlots : 1)) {}

GpuDevice::~GpuDevice() { synchronize(); }

void* GpuDevice::allocate(std::size_t bytes) {
  const std::uint64_t rounded = mem::MmapArena::roundToPages(bytes);
  std::uint64_t prev = m_inUse.load(std::memory_order_relaxed);
  for (;;) {
    if (prev + rounded > m_cfg.globalMemoryBytes) {
      m_allocFailures.fetch_add(1, std::memory_order_relaxed);
      throw DeviceOutOfMemory(bytes, m_cfg.globalMemoryBytes - prev);
    }
    if (m_inUse.compare_exchange_weak(prev, prev + rounded,
                                      std::memory_order_acq_rel)) {
      break;
    }
  }
  std::uint64_t peak = m_peak.load(std::memory_order_relaxed);
  const std::uint64_t now = prev + rounded;
  while (peak < now &&
         !m_peak.compare_exchange_weak(peak, now,
                                       std::memory_order_relaxed)) {
  }
  void* p = mem::MmapArena::map(bytes);
  if (!p) {
    m_inUse.fetch_sub(rounded, std::memory_order_relaxed);
    throw DeviceOutOfMemory(bytes, 0);
  }
  return p;
}

void GpuDevice::free(void* p, std::size_t bytes) {
  if (!p) return;
  mem::MmapArena::unmap(p, bytes);
  m_inUse.fetch_sub(mem::MmapArena::roundToPages(bytes),
                    std::memory_order_relaxed);
}

void GpuDevice::copyToDevice(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  m_h2dBytes.fetch_add(bytes, std::memory_order_relaxed);
  m_h2dCount.fetch_add(1, std::memory_order_relaxed);
}

void GpuDevice::copyToHost(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  m_d2hBytes.fetch_add(bytes, std::memory_order_relaxed);
  m_d2hCount.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<GpuStream> GpuDevice::createStream() {
  return std::make_unique<GpuStream>(*this);
}

void GpuDevice::synchronize() { m_workers.waitIdle(); }

DeviceStats GpuDevice::stats() const {
  DeviceStats s;
  s.h2dBytes = m_h2dBytes.load(std::memory_order_relaxed);
  s.d2hBytes = m_d2hBytes.load(std::memory_order_relaxed);
  s.h2dTransfers = m_h2dCount.load(std::memory_order_relaxed);
  s.d2hTransfers = m_d2hCount.load(std::memory_order_relaxed);
  s.kernelsLaunched = m_kernels.load(std::memory_order_relaxed);
  s.bytesInUse = m_inUse.load(std::memory_order_relaxed);
  s.peakBytesInUse = m_peak.load(std::memory_order_relaxed);
  s.allocFailures = m_allocFailures.load(std::memory_order_relaxed);
  s.cpuFallbacks = m_cpuFallbacks.load(std::memory_order_relaxed);
  return s;
}

void GpuDevice::resetStats() {
  m_h2dBytes.store(0, std::memory_order_relaxed);
  m_d2hBytes.store(0, std::memory_order_relaxed);
  m_h2dCount.store(0, std::memory_order_relaxed);
  m_d2hCount.store(0, std::memory_order_relaxed);
  m_kernels.store(0, std::memory_order_relaxed);
  m_allocFailures.store(0, std::memory_order_relaxed);
  m_cpuFallbacks.store(0, std::memory_order_relaxed);
  m_peak.store(m_inUse.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void GpuStream::enqueue(std::function<void()> op) {
  std::lock_guard<std::mutex> lk(m_mutex);
  ++m_submitted;
  m_queue.push_back(std::move(op));
  if (!m_running) {
    m_running = true;
    // Pump one op at a time through the device workers to preserve
    // in-stream ordering while letting other streams interleave.
    m_dev.m_workers.submit([this] { pump(); });
  }
}

// The stream-op wrappers open trace spans INSIDE the queued operation, so
// spans land on the device-worker thread that actually runs the copy or
// kernel — the trace shows H2D/D2H engines and kernel execution as their
// own rows, not the enqueuing thread's.
void GpuStream::enqueueCopyToDevice(void* dst, const void* src,
                                    std::size_t bytes) {
  enqueue([this, dst, src, bytes] {
    RMCRT_TRACE_SPAN("gpu", "h2d_copy");
    m_dev.copyToDevice(dst, src, bytes);
  });
}

void GpuStream::enqueueCopyToHost(void* dst, const void* src,
                                  std::size_t bytes) {
  enqueue([this, dst, src, bytes] {
    RMCRT_TRACE_SPAN("gpu", "d2h_copy");
    m_dev.copyToHost(dst, src, bytes);
  });
}

void GpuStream::enqueueKernel(std::function<void()> kernel) {
  enqueue([this, k = std::move(kernel)] {
    RMCRT_TRACE_SPAN("gpu", "kernel");
    m_dev.noteKernel();
    k();
  });
}

void GpuStream::pump() {
  std::function<void()> op;
  {
    std::lock_guard<std::mutex> lk(m_mutex);
    assert(!m_queue.empty());
    op = std::move(m_queue.front());
    m_queue.pop_front();
  }
  try {
    op();
  } catch (...) {
    // A faulted stream discards the rest of its queue — in-order semantics
    // leave later operations' inputs undefined. The error is reported at
    // the next synchronize(), like CUDA's deferred async-error model.
    std::lock_guard<std::mutex> lk(m_mutex);
    if (!m_error) m_error = std::current_exception();
    m_completed += 1 + m_queue.size();
    m_queue.clear();
    m_running = false;
    m_cv.notify_all();
    return;
  }
  bool more;
  {
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_completed;
    more = !m_queue.empty();
    if (!more) {
      m_running = false;
      m_cv.notify_all();
    }
  }
  if (more) m_dev.m_workers.submit([this] { pump(); });
}

void GpuStream::synchronize() {
  std::unique_lock<std::mutex> lk(m_mutex);
  m_cv.wait(lk,
            [this] { return m_completed == m_submitted && !m_running; });
  if (m_error) {
    std::exception_ptr e = std::exchange(m_error, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

bool GpuStream::failed() const {
  std::lock_guard<std::mutex> lk(m_mutex);
  return m_error != nullptr;
}

GpuStream::~GpuStream() {
  try {
    synchronize();
  } catch (const std::exception& e) {
    RMCRT_ERROR("GpuStream destroyed with pending operation error: "
                << e.what());
  } catch (...) {
    RMCRT_ERROR("GpuStream destroyed with pending non-standard error");
  }
}

}  // namespace rmcrt::gpu
