#include "gpu/gpu_task_executor.h"

#include <algorithm>
#include <deque>
#include <exception>

#include "util/logger.h"
#include "util/trace_recorder.h"

namespace rmcrt::gpu {

namespace {

/// Drain a stream whose task already failed, swallowing any further
/// captured error — we are abandoning its work either way.
void drainQuietly(GpuStream& s) {
  try {
    s.synchronize();
  } catch (...) {
  }
}

}  // namespace

ExecutorStats runGpuTasks(GpuDevice& device,
                          const std::vector<GpuPatchTask>& tasks,
                          int maxResident) {
  ExecutorStats stats;
  if (maxResident < 1) maxResident = 1;

  // Window of in-flight (resident) tasks, each with its own stream. A
  // task becomes resident when its stage ops are enqueued and retires
  // when its stream drains after `finish`.
  struct InFlight {
    std::unique_ptr<GpuStream> stream;
    std::size_t taskIdx = 0;
  };
  std::deque<InFlight> resident;
  std::size_t next = 0;
  std::exception_ptr firstUnrecovered;

  // A task whose device path failed either runs its fallback or records
  // the error; the batch always drains before an error propagates.
  auto handleFailure = [&](std::size_t taskIdx, std::exception_ptr err) {
    ++stats.deviceErrors;
    RMCRT_TRACE_INSTANT("gpu", "device_error");
    const GpuPatchTask& t = tasks[taskIdx];
    if (t.fallback) {
      RMCRT_TRACE_SPAN("gpu", "cpu_fallback");
      t.fallback();
      ++stats.fallbacksRun;
      ++stats.tasksRun;
      return;
    }
    if (!firstUnrecovered) firstUnrecovered = err;
  };

  auto launchOne = [&] {
    const std::size_t idx = next++;
    const GpuPatchTask& t = tasks[idx];
    InFlight f;
    f.stream = device.createStream();
    f.taskIdx = idx;
    try {
      RMCRT_TRACE_SPAN("gpu", "stage_enqueue");
      if (t.stage) t.stage(*f.stream);
      if (t.kernel) f.stream->enqueueKernel(t.kernel);
      if (t.finish) t.finish(*f.stream);
    } catch (...) {
      drainQuietly(*f.stream);
      handleFailure(idx, std::current_exception());
      return;
    }
    resident.push_back(std::move(f));
    stats.maxConcurrentResident =
        std::max(stats.maxConcurrentResident,
                 static_cast<int>(resident.size()));
  };

  while (next < tasks.size() || !resident.empty()) {
    // Fill the resident window.
    while (next < tasks.size() &&
           static_cast<int>(resident.size()) < maxResident) {
      launchOne();
    }
    // Retire the oldest task (in-order retirement keeps the memory
    // accounting simple; younger streams keep running meanwhile).
    if (!resident.empty()) {
      InFlight f = std::move(resident.front());
      resident.pop_front();
      try {
        RMCRT_TRACE_SPAN("gpu", "retire_wait");
        f.stream->synchronize();
        ++stats.tasksRun;
      } catch (...) {
        handleFailure(f.taskIdx, std::current_exception());
      }
    }
  }
  if (firstUnrecovered) std::rethrow_exception(firstUnrecovered);
  return stats;
}

}  // namespace rmcrt::gpu
