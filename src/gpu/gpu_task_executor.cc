#include "gpu/gpu_task_executor.h"

#include <algorithm>
#include <deque>

namespace rmcrt::gpu {

ExecutorStats runGpuTasks(GpuDevice& device,
                          const std::vector<GpuPatchTask>& tasks,
                          int maxResident) {
  ExecutorStats stats;
  if (maxResident < 1) maxResident = 1;

  // Window of in-flight (resident) tasks, each with its own stream. A
  // task becomes resident when its stage ops are enqueued and retires
  // when its stream drains after `finish`.
  struct InFlight {
    std::unique_ptr<GpuStream> stream;
  };
  std::deque<InFlight> resident;
  std::size_t next = 0;

  auto launchOne = [&] {
    const GpuPatchTask& t = tasks[next++];
    InFlight f;
    f.stream = device.createStream();
    if (t.stage) t.stage(*f.stream);
    if (t.kernel) f.stream->enqueueKernel(t.kernel);
    if (t.finish) t.finish(*f.stream);
    resident.push_back(std::move(f));
    stats.maxConcurrentResident =
        std::max(stats.maxConcurrentResident,
                 static_cast<int>(resident.size()));
  };

  while (next < tasks.size() || !resident.empty()) {
    // Fill the resident window.
    while (next < tasks.size() &&
           static_cast<int>(resident.size()) < maxResident) {
      launchOne();
    }
    // Retire the oldest task (in-order retirement keeps the memory
    // accounting simple; younger streams keep running meanwhile).
    if (!resident.empty()) {
      resident.front().stream->synchronize();
      resident.pop_front();
      ++stats.tasksRun;
    }
  }
  return stats;
}

}  // namespace rmcrt::gpu
