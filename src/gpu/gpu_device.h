#pragma once

/// \file gpu_device.h
/// A simulated GPU device (DESIGN.md §2): bounded "device global memory",
/// in-order streams executed by a worker pool (kernels from different
/// streams may interleave, as on the K20X's concurrent-kernel hardware),
/// and two copy engines whose transferred bytes are metered so the
/// benchmarks can model PCIe cost. Device memory is host memory mapped
/// through the mmap arena; the *accounting* (capacity, failure on
/// exhaustion, peak usage) reproduces the 6 GB constraint that motivated
/// the paper's level-database design.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "mem/mmap_arena.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace rmcrt::gpu {

/// Thrown when a device allocation would exceed global-memory capacity —
/// the failure mode that per-patch coarse copies hit on the K20X.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(std::size_t requested, std::size_t free)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + " bytes, " +
                           std::to_string(free) + " free") {}
};

/// Transfer/occupancy counters for one device.
struct DeviceStats {
  std::uint64_t h2dBytes = 0;
  std::uint64_t d2hBytes = 0;
  std::uint64_t h2dTransfers = 0;
  std::uint64_t d2hTransfers = 0;
  std::uint64_t kernelsLaunched = 0;
  std::uint64_t bytesInUse = 0;
  std::uint64_t peakBytesInUse = 0;
  std::uint64_t allocFailures = 0;
  std::uint64_t cpuFallbacks = 0;  ///< patches rerouted to the CPU tracer
};

/// Publish one device's counters into \p reg as gauges under \p prefix
/// (e.g. "gpu.device."), for the unified per-timestep emission path.
inline void exportMetrics(const DeviceStats& s, MetricsRegistry& reg,
                          const std::string& prefix) {
  reg.setGauge(prefix + "h2d_bytes", static_cast<double>(s.h2dBytes));
  reg.setGauge(prefix + "d2h_bytes", static_cast<double>(s.d2hBytes));
  reg.setGauge(prefix + "h2d_transfers",
               static_cast<double>(s.h2dTransfers));
  reg.setGauge(prefix + "d2h_transfers",
               static_cast<double>(s.d2hTransfers));
  reg.setGauge(prefix + "kernels_launched",
               static_cast<double>(s.kernelsLaunched));
  reg.setGauge(prefix + "bytes_in_use", static_cast<double>(s.bytesInUse));
  reg.setGauge(prefix + "peak_bytes_in_use",
               static_cast<double>(s.peakBytesInUse));
  reg.setGauge(prefix + "alloc_failures",
               static_cast<double>(s.allocFailures));
  reg.setGauge(prefix + "cpu_fallbacks",
               static_cast<double>(s.cpuFallbacks));
}

class GpuStream;

/// The simulated device.
///
/// Nvidia K20X defaults: 6 GB global memory, 2 copy engines, 14 SMX units
/// (worker slots for concurrent kernels).
class GpuDevice {
 public:
  struct Config {
    std::size_t globalMemoryBytes = 6ull << 30;
    int copyEngines = 2;
    int workerSlots = 2;  ///< threads executing stream operations
  };

  explicit GpuDevice(const Config& cfg);
  GpuDevice() : GpuDevice(Config{}) {}
  ~GpuDevice();

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  std::size_t capacity() const { return m_cfg.globalMemoryBytes; }
  std::size_t bytesInUse() const {
    return m_inUse.load(std::memory_order_relaxed);
  }
  std::size_t bytesFree() const { return capacity() - bytesInUse(); }

  /// Allocate device global memory. Throws DeviceOutOfMemory when the
  /// capacity would be exceeded.
  void* allocate(std::size_t bytes);
  void free(void* p, std::size_t bytes);

  /// Synchronous host<->device copies (stream-less, like cudaMemcpy).
  void copyToDevice(void* dst, const void* src, std::size_t bytes);
  void copyToHost(void* dst, const void* src, std::size_t bytes);

  /// Create an in-order stream. Streams may execute concurrently with one
  /// another, sharing the device's worker slots.
  std::unique_ptr<GpuStream> createStream();

  /// Block until every stream operation submitted so far has finished.
  void synchronize();

  /// Record that a patch fell back to the CPU tracer after this device
  /// could not accommodate it (graceful-degradation accounting).
  void noteCpuFallback() {
    m_cpuFallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  DeviceStats stats() const;
  void resetStats();

 private:
  friend class GpuStream;

  void noteKernel() { m_kernels.fetch_add(1, std::memory_order_relaxed); }

  Config m_cfg;
  ThreadPool m_workers;
  std::atomic<std::uint64_t> m_inUse{0};
  std::atomic<std::uint64_t> m_peak{0};
  std::atomic<std::uint64_t> m_h2dBytes{0};
  std::atomic<std::uint64_t> m_d2hBytes{0};
  std::atomic<std::uint64_t> m_h2dCount{0};
  std::atomic<std::uint64_t> m_d2hCount{0};
  std::atomic<std::uint64_t> m_kernels{0};
  std::atomic<std::uint64_t> m_allocFailures{0};
  std::atomic<std::uint64_t> m_cpuFallbacks{0};
};

/// An in-order operation queue on a device (CUDA-stream-like). Operations
/// submitted to one stream run in submission order; operations in
/// different streams may interleave. enqueue* returns immediately;
/// synchronize() blocks until this stream drains.
class GpuStream {
 public:
  explicit GpuStream(GpuDevice& dev) : m_dev(dev) {}
  /// Drains the stream. A captured operation error is logged, never
  /// thrown — destructors must not std::terminate the process.
  ~GpuStream();

  GpuStream(const GpuStream&) = delete;
  GpuStream& operator=(const GpuStream&) = delete;

  /// Asynchronous H2D copy (the source must stay valid until synchronize).
  void enqueueCopyToDevice(void* dst, const void* src, std::size_t bytes);
  /// Asynchronous D2H copy.
  void enqueueCopyToHost(void* dst, const void* src, std::size_t bytes);
  /// Asynchronous kernel: an arbitrary callable run on a device worker.
  void enqueueKernel(std::function<void()> kernel);

  /// Block the calling thread until all enqueued work completes. If any
  /// operation threw, the first exception is rethrown here (then cleared),
  /// mirroring how CUDA reports async errors at the next sync point;
  /// operations queued behind the faulting one were discarded.
  void synchronize();

  /// True while a captured operation error awaits the next synchronize().
  bool failed() const;

 private:
  void enqueue(std::function<void()> op);
  /// Run the next queued op on a device worker, then hand the slot back
  /// (so other streams interleave) and reschedule if more ops remain.
  void pump();

  GpuDevice& m_dev;
  mutable std::mutex m_mutex;
  std::condition_variable m_cv;
  std::uint64_t m_submitted = 0;
  std::uint64_t m_completed = 0;
  bool m_running = false;  ///< an op for this stream is on a worker
  std::deque<std::function<void()>> m_queue;
  std::exception_ptr m_error;  ///< first op failure, until synchronize
};

}  // namespace rmcrt::gpu
