#pragma once

/// \file service.h
/// Radiation-as-a-service (DESIGN.md §16): a long-lived rmcrt::service::
/// Service that owns scenes (grid + radiative properties + RmcrtSetup,
/// versioned by a monotonically increasing *scene generation*) and
/// answers concurrent divQ / boundary-flux / radiometer queries from many
/// client threads ("tenants"). Instead of one solve per request, the
/// service coalesces rays from *different* requests into tile-sized work
/// units (Tracer::DivQTileJob) and drains them across one shared
/// ThreadPool — so one PackedLevelCache-style fused record set and ONE
/// simulated-GPU coarse-level upload serve every tenant on a scene
/// generation. The coarse upload is invalidated only when the scene
/// changes: updateProperties()/regrid() bump the generation, evict the
/// shared packed records, and invalidate the scene's slot in the GPU
/// level database.
///
/// Determinism contract: every ray is fixed by (seed, cell, ray), and
/// each request's tiles scatter only into that request's own sink, so a
/// query's result is bitwise identical to the serial one-shot solve over
/// the same cells (solveDivQOneShot) regardless of which other tenants'
/// tiles share the batch, the pool size, or the arrival order.
///
/// Admission control (runtime/admission.h): a bounded in-flight depth and
/// a per-tenant fairness cap shed overload with *typed* rejections
/// (Outcome::reject) — clients receive QueueFull/TenantBacklog/
/// StaleGeneration/UnknownScene/ShuttingDown, never silent drops and
/// never stale data. Reconciliation invariant, checked by the soak CI
/// job: submitted == completed + rejected once the queue drains.
///
/// Latency SLOs: per-request latency feeds a streaming P² estimator
/// (util/stats.h), published as service.p50_ms / service.p99_ms gauges;
/// completions above ServiceConfig::sloP99Ms count service.slo_breaches.
/// Per-tenant counters live under service.tenant.<name>.* via
/// MetricsView.
///
/// An optional comm::FaultInjector models an unreliable client-to-
/// service transport: submissions may be dropped (retransmitted after a
/// backoff), delayed, duplicated (deduplicated on arrival), or reordered
/// — the accounting stays exact either way.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/fault_injector.h"
#include "core/radiometer.h"
#include "core/ray_tracer.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_data_warehouse.h"
#include "grid/grid.h"
#include "runtime/admission.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace rmcrt::service {

using SceneId = int;
/// Monotone per-scene version; bumped by updateProperties()/regrid().
using Generation = std::uint64_t;

/// Why a request was shed or refused. None means success.
enum class RejectReason : std::uint8_t {
  None,
  UnknownScene,     ///< no such SceneId registered
  StaleGeneration,  ///< pinned generation no longer current (typed error,
                    ///< never silently-served stale data)
  QueueFull,        ///< global admission depth reached — back off, retry
  TenantBacklog,    ///< per-tenant fairness cap reached
  ShuttingDown,     ///< service stopped accepting work
};

const char* toString(RejectReason r);

/// A query result or a typed rejection.
template <typename T>
struct Outcome {
  T value{};
  RejectReason reject = RejectReason::None;
  bool ok() const { return reject == RejectReason::None; }

  static Outcome rejected(RejectReason r) {
    Outcome o;
    o.reject = r;
    return o;
  }
};

/// Returned by registerScene / updateProperties / regrid: the id plus the
/// generation the caller may pin queries to.
struct SceneHandle {
  SceneId id = -1;
  Generation generation = 0;
};

/// divQ over \p cells of the scene's fine level. generation == 0 means
/// "latest at execution time"; a nonzero pin is rejected with
/// StaleGeneration once the scene moves on.
struct DivQQuery {
  std::string tenant;
  SceneId scene = -1;
  Generation generation = 0;
  CellRange cells;
};

struct DivQResult {
  CellRange window;           ///< the queried cells
  std::vector<double> divQ;   ///< z-major, x fastest over `window`
  Generation generation = 0;  ///< the generation that served the query
  double latencyMs = 0.0;     ///< submit-to-completion wall time

  double at(const IntVector& c) const {
    const IntVector rel = c - window.low();
    const IntVector sz = window.size();
    return divQ[static_cast<std::size_t>(
        rel.x() + static_cast<std::int64_t>(sz.x()) *
                      (rel.y() + static_cast<std::int64_t>(sz.y()) * rel.z()))];
  }
};

/// Incident boundary flux for a list of (cell, outward face) pairs.
struct FluxQuery {
  std::string tenant;
  SceneId scene = -1;
  Generation generation = 0;
  std::vector<std::pair<IntVector, IntVector>> faces;
  int nRays = 64;
};

struct FluxResult {
  std::vector<double> fluxes;  ///< one per FluxQuery::faces entry
  Generation generation = 0;
  double latencyMs = 0.0;
};

/// Virtual-radiometer evaluation (core/radiometer.h).
struct RadiometerQuery {
  std::string tenant;
  SceneId scene = -1;
  Generation generation = 0;
  core::RadiometerSpec spec;
};

struct RadiometerResult {
  core::RadiometerReading reading;
  Generation generation = 0;
  double latencyMs = 0.0;
};

struct ServiceConfig {
  /// Workers of the owned tracing pool (ignored when `pool` is set).
  std::size_t workers = 4;
  /// Optional external pool (non-owning; must outlive the Service).
  ThreadPool* pool = nullptr;
  runtime::AdmissionConfig admission;
  /// Cross-request tile batching (the point of the service). false = the
  /// naive one-solve-per-request baseline the benchmark contrasts:
  /// every request re-packs its own records and re-uploads its own
  /// coarse copy, with no coalescing across requests.
  bool batching = true;
  /// Completions slower than this count as service.slo_breaches [ms].
  double sloP99Ms = 1000.0;
  /// Optional fault model on the client->service submit path.
  std::shared_ptr<comm::FaultInjector> injector;
};

/// Aggregate counters; admission carries its own reconciliation set.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  /// H2D uploads of a fused coarse record array. Batched mode: exactly
  /// one per (scene, generation) touched; naive mode: one per request.
  std::uint64_t coarseUploads = 0;
  /// Generation bumps that evicted shared packed state + device slots.
  std::uint64_t generationEvictions = 0;
  std::uint64_t batches = 0;   ///< batcher drains executed
  std::uint64_t tileJobs = 0;  ///< cross-request tile work units traced
  std::uint64_t sloBreaches = 0;
  std::uint64_t faultsRetransmitted = 0;
  std::uint64_t faultsDelayed = 0;
  std::uint64_t faultsDeduplicated = 0;
  std::uint64_t faultsReordered = 0;
  double p50Ms = 0.0;  ///< NaN until the first completion
  double p99Ms = 0.0;
  runtime::AdmissionStats admission;
};

class Service {
 public:
  explicit Service(const ServiceConfig& cfg = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Register a scene; properties/packed records build lazily on first
  /// query. Generations start at 1.
  SceneHandle registerScene(std::shared_ptr<const grid::Grid> grid,
                            const core::RmcrtSetup& setup);

  /// Swap the scene's radiation problem: bumps the generation, drops the
  /// shared packed records, and invalidates the scene's GPU level-db
  /// slot. In-flight batches finish against the old state first (scene
  /// updates serialize with batch drains on the scene mutex).
  Outcome<SceneHandle> updateProperties(SceneId id,
                                        const core::RadiationProblem& problem);

  /// Replace the scene's grid (regrid). Same invalidation semantics.
  Outcome<SceneHandle> regrid(SceneId id,
                              std::shared_ptr<const grid::Grid> grid);

  std::future<Outcome<DivQResult>> submitDivQ(DivQQuery q);
  std::future<Outcome<FluxResult>> submitBoundaryFlux(FluxQuery q);
  std::future<Outcome<RadiometerResult>> submitRadiometer(RadiometerQuery q);

  /// Hold the batcher between drains (admission keeps accepting): the
  /// test/maintenance seam for deterministic queue-buildup scenarios.
  void pause();
  void resume();

  /// Stop accepting work and reject everything still queued with
  /// ShuttingDown. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  MetricsRegistry& metrics() { return m_metrics; }
  /// The simulated device's warehouse (observability / tests).
  const gpu::GpuDataWarehouse& warehouse() const { return *m_gdw; }

  /// The serial reference path a service answer must match bitwise: a
  /// fresh one-shot solve (own pack, own upload-free host trace) over the
  /// same cells with the same setup. Also the correctness oracle for the
  /// benchmark's accuracy gate.
  static DivQResult solveDivQOneShot(const grid::Grid& grid,
                                     const core::RmcrtSetup& setup,
                                     const CellRange& cells);
  static FluxResult solveFluxOneShot(
      const grid::Grid& grid, const core::RmcrtSetup& setup,
      const std::vector<std::pair<IntVector, IntVector>>& faces, int nRays);
  static RadiometerResult solveRadiometerOneShot(
      const grid::Grid& grid, const core::RmcrtSetup& setup,
      const core::RadiometerSpec& spec);

 private:
  struct SceneState;
  struct PendingRequest;
  struct RequestExec;

  std::shared_ptr<SceneState> findScene(SceneId id) const;
  /// Build (once) the scene's host property fields. Caller holds scene.mu.
  void ensureFieldsLocked(SceneState& s) const;
  /// Build (once per generation) the shared packed records and the single
  /// coarse-level device upload. Caller holds scene.mu.
  void ensureSharedLocked(SceneState& s, SceneId id);
  /// Per-request Tracer against the scene's shared packed state. `roi`
  /// is the fine-level allowed box. Caller holds scene.mu.
  std::unique_ptr<core::Tracer> makeSharedTracer(const SceneState& s,
                                                 const CellRange& roi) const;
  /// Per-request SpectralTracer for scenes registered with a non-empty
  /// band model: every band aliases the scene's shared packed records and
  /// the single coarse device upload (kappa scaling happens in the march,
  /// so bands add zero pack/upload cost). Caller holds scene.mu.
  std::unique_ptr<core::SpectralTracer> makeSharedSpectral(
      const SceneState& s, const CellRange& roi) const;

  /// Admission + fault model + enqueue, shared by the three submit
  /// fronts. Shed requests are rejected (typed) before queueing.
  void enqueue(std::unique_ptr<PendingRequest> req);

  void batcherLoop();
  void processBatch(std::deque<std::unique_ptr<PendingRequest>> batch);
  void processBatched(std::vector<std::unique_ptr<PendingRequest>>& reqs);
  void processNaive(PendingRequest& req);
  /// Fairness: interleave same-arrival-order requests across tenants.
  static std::vector<std::unique_ptr<PendingRequest>> interleaveByTenant(
      std::deque<std::unique_ptr<PendingRequest>> batch);

  void rejectRequest(PendingRequest& req, RejectReason why);
  void completeRequest(PendingRequest& req, RequestExec& exec);
  void recordLatency(const std::string& tenant, double ms);

  ServiceConfig m_cfg;
  std::unique_ptr<ThreadPool> m_ownedPool;
  ThreadPool* m_pool = nullptr;

  std::unique_ptr<gpu::GpuDevice> m_dev;
  std::unique_ptr<gpu::GpuDataWarehouse> m_gdw;

  runtime::AdmissionController m_admission;
  MetricsRegistry m_metrics;

  /// Guards the scene table, the pending queue, and lifecycle flags.
  /// Lock order: m_mutex -> scene.mu -> m_statsMutex (each optional,
  /// never reversed).
  mutable std::mutex m_mutex;
  std::condition_variable m_cv;
  std::map<SceneId, std::shared_ptr<SceneState>> m_scenes;
  std::deque<std::unique_ptr<PendingRequest>> m_pending;
  SceneId m_nextScene = 0;
  bool m_paused = false;
  bool m_stop = false;
  /// Distinct per-request device-copy ids for the naive baseline.
  std::atomic<int> m_naiveSeq{0};

  mutable std::mutex m_statsMutex;
  RunningStats m_latencyMs;  ///< streaming p50/p99 (P² markers)
  std::uint64_t m_submitted = 0;
  std::uint64_t m_completed = 0;
  std::uint64_t m_rejected = 0;
  std::uint64_t m_coarseUploads = 0;
  std::uint64_t m_generationEvictions = 0;
  std::uint64_t m_batches = 0;
  std::uint64_t m_tileJobs = 0;
  std::uint64_t m_sloBreaches = 0;
  std::uint64_t m_faultsRetransmitted = 0;
  std::uint64_t m_faultsDelayed = 0;
  std::uint64_t m_faultsDeduplicated = 0;
  std::uint64_t m_faultsReordered = 0;

  std::thread m_batcher;
};

}  // namespace rmcrt::service
