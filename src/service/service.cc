#include "service/service.h"

#include <algorithm>
#include <functional>

#include "grid/operators.h"
#include "util/trace_recorder.h"

namespace rmcrt::service {

using core::LevelGeom;
using core::PackedCell;
using core::PackedFieldView;
using core::PackedLevelField;
using core::RadiationFieldsView;
using core::SpectralTracer;
using core::TraceLevel;
using core::Tracer;
using core::WallProperties;
using grid::CCVariable;
using grid::CellType;

namespace {

/// GPU level-database label for one scene generation. The generation is
/// part of the key so a stale upload can never be mistaken for the
/// current one; invalidateLevel(sceneId) evicts every generation of the
/// scene because the level index IS the scene id.
std::string packedLabel(Generation gen) {
  return "svc.packedRad.g" + std::to_string(gen);
}

/// Host property fields for a two-level scene, built the exact same way
/// by the service path and the one-shot reference path — the shared
/// deterministic foundation of the bitwise-identity contract.
struct HostFields {
  CCVariable<double> fAbs, fSig;
  CCVariable<CellType> fCt;
  CCVariable<double> cAbs, cSig;
  CCVariable<CellType> cCt;
};

HostFields buildHostFields(const grid::Grid& grid,
                           const core::RadiationProblem& problem) {
  const grid::Level& fine = grid.fineLevel();
  const grid::Level& coarse = grid.coarseLevel();
  HostFields hf;
  hf.fAbs = CCVariable<double>(fine.cells(), 0.0);
  hf.fSig = CCVariable<double>(fine.cells(), 0.0);
  hf.fCt = CCVariable<CellType>(fine.cells(), CellType::Flow);
  core::initializeProperties(fine, problem, hf.fAbs, hf.fSig, hf.fCt);

  hf.cAbs = CCVariable<double>(coarse.cells(), 0.0);
  hf.cSig = CCVariable<double>(coarse.cells(), 0.0);
  hf.cCt = CCVariable<CellType>(coarse.cells(), CellType::Flow);
  const IntVector rr = fine.refinementRatio();
  grid::coarsenAverage(hf.fAbs, rr, hf.cAbs, coarse.cells());
  grid::coarsenAverage(hf.fSig, rr, hf.cSig, coarse.cells());
  grid::coarsenCellType(hf.fCt, rr, hf.cCt, coarse.cells());
  return hf;
}

RadiationFieldsView viewsOf(const CCVariable<double>& abs,
                            const CCVariable<double>& sig,
                            const CCVariable<CellType>& ct) {
  return RadiationFieldsView{core::FieldView<double>::fromHost(abs),
                             core::FieldView<double>::fromHost(sig),
                             core::FieldView<CellType>::fromHost(ct)};
}

WallProperties wallsOf(const core::RadiationProblem& p) {
  return WallProperties{p.wallSigmaT4OverPi, p.wallEmissivity};
}

}  // namespace

const char* toString(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::UnknownScene: return "unknown_scene";
    case RejectReason::StaleGeneration: return "stale_generation";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::TenantBacklog: return "tenant_backlog";
    case RejectReason::ShuttingDown: return "shutting_down";
  }
  return "unknown";
}

/// One registered scene. `mu` serializes lazy builds, generation bumps,
/// and batch drains against each other — a batch holds the mutex across
/// its trace so an updateProperties() can never repack or evict device
/// records out from under in-flight tile jobs.
struct Service::SceneState {
  std::mutex mu;
  std::shared_ptr<const grid::Grid> grid;
  core::RmcrtSetup setup;
  Generation generation = 1;
  bool fieldsReady = false;
  bool sharedReady = false;
  CCVariable<double> fAbs, fSig;
  CCVariable<CellType> fCt;
  CCVariable<double> cAbs, cSig;
  CCVariable<CellType> cCt;
  /// The shared fused records every tenant's Tracer on this generation
  /// references — built once per generation, not once per request.
  PackedLevelField finePacked;
  PackedLevelField coarsePacked;
  /// The single coarse-level device copy (GPU level database).
  const gpu::DeviceVar* coarseDev = nullptr;
};

/// A queued query. Exactly one of the three promises is live (by kind).
struct Service::PendingRequest {
  enum class Kind { DivQ, Flux, Radiometer };
  Kind kind = Kind::DivQ;
  std::string tenant;
  SceneId scene = -1;
  Generation generation = 0;
  CellRange cells;
  std::vector<std::pair<IntVector, IntVector>> faces;
  int fluxRays = 0;
  core::RadiometerSpec spec;
  std::chrono::steady_clock::time_point submitTime;
  bool admitted = false;
  std::promise<Outcome<DivQResult>> divqPromise;
  std::promise<Outcome<FluxResult>> fluxPromise;
  std::promise<Outcome<RadiometerResult>> radPromise;
};

/// Per-request execution state for one batch drain.
struct Service::RequestExec {
  PendingRequest* req = nullptr;
  std::shared_ptr<SceneState> scene;
  Generation servedGeneration = 0;
  std::unique_ptr<Tracer> tracer;
  /// Band-loop driver for scenes registered with a non-empty band model;
  /// null for gray scenes. Its tiles drain through the same
  /// computeDivQBatch as gray ones (DivQTileJob::spectral dispatch).
  std::unique_ptr<SpectralTracer> spectral;
  std::vector<double> out;  ///< divQ sink (request-scoped)
  std::vector<double> fluxOut;
  core::RadiometerReading reading;
};

Service::Service(const ServiceConfig& cfg)
    : m_cfg(cfg), m_admission(cfg.admission) {
  if (m_cfg.pool != nullptr) {
    m_pool = m_cfg.pool;
  } else {
    m_ownedPool = std::make_unique<ThreadPool>(m_cfg.workers);
    m_pool = m_ownedPool.get();
  }
  m_dev = std::make_unique<gpu::GpuDevice>();
  m_gdw = std::make_unique<gpu::GpuDataWarehouse>(*m_dev);
  m_batcher = std::thread([this] { batcherLoop(); });
}

Service::~Service() { shutdown(); }

SceneHandle Service::registerScene(std::shared_ptr<const grid::Grid> grid,
                                   const core::RmcrtSetup& setup) {
  auto s = std::make_shared<SceneState>();
  s->grid = std::move(grid);
  s->setup = setup;
  std::lock_guard<std::mutex> lk(m_mutex);
  const SceneId id = m_nextScene++;
  m_scenes.emplace(id, std::move(s));
  return SceneHandle{id, 1};
}

Outcome<SceneHandle> Service::updateProperties(
    SceneId id, const core::RadiationProblem& problem) {
  auto s = findScene(id);
  if (!s) return Outcome<SceneHandle>::rejected(RejectReason::UnknownScene);
  std::lock_guard<std::mutex> lk(s->mu);
  s->setup.problem = problem;
  ++s->generation;
  s->fieldsReady = false;
  s->sharedReady = false;
  s->coarseDev = nullptr;
  m_gdw->invalidateLevel(id);
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_generationEvictions;
  }
  return Outcome<SceneHandle>{SceneHandle{id, s->generation},
                              RejectReason::None};
}

Outcome<SceneHandle> Service::regrid(SceneId id,
                                     std::shared_ptr<const grid::Grid> grid) {
  auto s = findScene(id);
  if (!s) return Outcome<SceneHandle>::rejected(RejectReason::UnknownScene);
  std::lock_guard<std::mutex> lk(s->mu);
  s->grid = std::move(grid);
  ++s->generation;
  s->fieldsReady = false;
  s->sharedReady = false;
  s->coarseDev = nullptr;
  m_gdw->invalidateLevel(id);
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_generationEvictions;
  }
  return Outcome<SceneHandle>{SceneHandle{id, s->generation},
                              RejectReason::None};
}

std::shared_ptr<Service::SceneState> Service::findScene(SceneId id) const {
  std::lock_guard<std::mutex> lk(m_mutex);
  auto it = m_scenes.find(id);
  return it == m_scenes.end() ? nullptr : it->second;
}

void Service::ensureFieldsLocked(SceneState& s) const {
  if (s.fieldsReady) return;
  HostFields hf = buildHostFields(*s.grid, s.setup.problem);
  s.fAbs = std::move(hf.fAbs);
  s.fSig = std::move(hf.fSig);
  s.fCt = std::move(hf.fCt);
  s.cAbs = std::move(hf.cAbs);
  s.cSig = std::move(hf.cSig);
  s.cCt = std::move(hf.cCt);
  s.fieldsReady = true;
}

void Service::ensureSharedLocked(SceneState& s, SceneId id) {
  ensureFieldsLocked(s);
  if (s.sharedReady) return;
  RMCRT_TRACE_SPAN("service", "build_shared_scene_state");
  s.finePacked.pack(viewsOf(s.fAbs, s.fSig, s.fCt));
  s.coarsePacked.pack(viewsOf(s.cAbs, s.cSig, s.cCt));
  const std::string label = packedLabel(s.generation);
  // getOrUploadLevelVarRaw transfers only when the key is absent; count
  // the transfer, not the lookup — the "one upload per generation" claim
  // the service_test pins down.
  const bool willUpload = !m_gdw->hasLevelVar(label, id);
  s.coarseDev = &m_gdw->getOrUploadLevelVarRaw(
      label, id, s.coarsePacked.data(), s.coarsePacked.window(),
      sizeof(PackedCell));
  if (willUpload) {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_coarseUploads;
  }
  s.sharedReady = true;
}

std::unique_ptr<Tracer> Service::makeSharedTracer(const SceneState& s,
                                                  const CellRange& roi) const {
  const grid::Level& fine = s.grid->fineLevel();
  const grid::Level& coarse = s.grid->coarseLevel();
  TraceLevel fineTL{LevelGeom::from(fine), viewsOf(s.fAbs, s.fSig, s.fCt),
                    roi, s.finePacked.view()};
  // Coarse level marches the device-resident records (host-addressable
  // simulated device) — the one shared upload serving every tenant.
  TraceLevel coarseTL{LevelGeom::from(coarse), RadiationFieldsView{},
                      coarse.cells(), PackedFieldView::fromDevice(*s.coarseDev)};
  return std::make_unique<Tracer>(
      std::vector<TraceLevel>{fineTL, coarseTL}, wallsOf(s.setup.problem),
      s.setup.trace);
}

std::unique_ptr<SpectralTracer> Service::makeSharedSpectral(
    const SceneState& s, const CellRange& roi) const {
  const grid::Level& fine = s.grid->fineLevel();
  const grid::Level& coarse = s.grid->coarseLevel();
  // Both levels already carry packed views (the scene's shared records and
  // the one device upload), so the SpectralTracer re-packs nothing: the
  // whole band loop rides the same state a gray tenant uses.
  TraceLevel fineTL{LevelGeom::from(fine), viewsOf(s.fAbs, s.fSig, s.fCt),
                    roi, s.finePacked.view()};
  TraceLevel coarseTL{LevelGeom::from(coarse), RadiationFieldsView{},
                      coarse.cells(), PackedFieldView::fromDevice(*s.coarseDev)};
  return std::make_unique<SpectralTracer>(
      std::vector<TraceLevel>{fineTL, coarseTL}, wallsOf(s.setup.problem),
      s.setup.trace, s.setup.bands);
}

std::future<Outcome<DivQResult>> Service::submitDivQ(DivQQuery q) {
  auto req = std::make_unique<PendingRequest>();
  req->kind = PendingRequest::Kind::DivQ;
  req->tenant = std::move(q.tenant);
  req->scene = q.scene;
  req->generation = q.generation;
  req->cells = q.cells;
  auto fut = req->divqPromise.get_future();
  enqueue(std::move(req));
  return fut;
}

std::future<Outcome<FluxResult>> Service::submitBoundaryFlux(FluxQuery q) {
  auto req = std::make_unique<PendingRequest>();
  req->kind = PendingRequest::Kind::Flux;
  req->tenant = std::move(q.tenant);
  req->scene = q.scene;
  req->generation = q.generation;
  req->faces = std::move(q.faces);
  req->fluxRays = q.nRays;
  auto fut = req->fluxPromise.get_future();
  enqueue(std::move(req));
  return fut;
}

std::future<Outcome<RadiometerResult>> Service::submitRadiometer(
    RadiometerQuery q) {
  auto req = std::make_unique<PendingRequest>();
  req->kind = PendingRequest::Kind::Radiometer;
  req->tenant = std::move(q.tenant);
  req->scene = q.scene;
  req->generation = q.generation;
  req->spec = q.spec;
  auto fut = req->radPromise.get_future();
  enqueue(std::move(req));
  return fut;
}

void Service::enqueue(std::unique_ptr<PendingRequest> req) {
  req->submitTime = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_submitted;
  }
  m_metrics.view("service.tenant." + req->tenant)
      .counter("submitted")
      .increment();

  {
    std::lock_guard<std::mutex> lk(m_mutex);
    if (m_stop) {
      rejectRequest(*req, RejectReason::ShuttingDown);
      return;
    }
  }

  switch (m_admission.tryAdmit(req->tenant)) {
    case runtime::AdmissionVerdict::Admit:
      req->admitted = true;
      break;
    case runtime::AdmissionVerdict::QueueFull:
      rejectRequest(*req, RejectReason::QueueFull);
      return;
    case runtime::AdmissionVerdict::TenantBacklog:
      rejectRequest(*req, RejectReason::TenantBacklog);
      return;
  }

  // Unreliable-transport model on the submit path. Faults resolve
  // synchronously on the client thread (a drop becomes a retransmit
  // after a backoff; a duplicate is delivered once) so the accounting
  // invariant submitted == completed + rejected stays exact.
  bool arriveAtFront = false;
  if (m_cfg.injector) {
    const int src = static_cast<int>(
                        std::hash<std::string>{}(req->tenant) % 1023) +
                    1;
    const auto plan = m_cfg.injector->plan(src, /*dst=*/0, req->scene);
    switch (plan.action) {
      case comm::FaultAction::Drop: {
        {
          std::lock_guard<std::mutex> slk(m_statsMutex);
          ++m_faultsRetransmitted;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        break;
      }
      case comm::FaultAction::Delay: {
        {
          std::lock_guard<std::mutex> slk(m_statsMutex);
          ++m_faultsDelayed;
        }
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            plan.delayMs));
        break;
      }
      case comm::FaultAction::Duplicate: {
        std::lock_guard<std::mutex> slk(m_statsMutex);
        ++m_faultsDeduplicated;  // second copy suppressed on arrival
        break;
      }
      case comm::FaultAction::Reorder: {
        {
          std::lock_guard<std::mutex> slk(m_statsMutex);
          ++m_faultsReordered;
        }
        arriveAtFront = true;  // overtakes everything already queued
        break;
      }
      case comm::FaultAction::Deliver:
        break;
    }
  }

  {
    std::lock_guard<std::mutex> lk(m_mutex);
    if (m_stop) {
      rejectRequest(*req, RejectReason::ShuttingDown);
      return;
    }
    if (arriveAtFront)
      m_pending.push_front(std::move(req));
    else
      m_pending.push_back(std::move(req));
  }
  m_cv.notify_one();
}

void Service::pause() {
  std::lock_guard<std::mutex> lk(m_mutex);
  m_paused = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_paused = false;
  }
  m_cv.notify_all();
}

void Service::shutdown() {
  std::deque<std::unique_ptr<PendingRequest>> leftovers;
  {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_stop = true;
    leftovers.swap(m_pending);
  }
  m_cv.notify_all();
  if (m_batcher.joinable()) m_batcher.join();
  for (auto& r : leftovers) rejectRequest(*r, RejectReason::ShuttingDown);
}

void Service::batcherLoop() {
  for (;;) {
    std::deque<std::unique_ptr<PendingRequest>> batch;
    {
      std::unique_lock<std::mutex> lk(m_mutex);
      m_cv.wait(lk, [this] {
        return m_stop || (!m_paused && !m_pending.empty());
      });
      if (m_stop) return;  // leftovers rejected by shutdown()
      batch.swap(m_pending);
    }
    processBatch(std::move(batch));
  }
}

void Service::processBatch(std::deque<std::unique_ptr<PendingRequest>> batch) {
  RMCRT_TRACE_SPAN("service", "batch_drain");
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_batches;
  }
  auto ordered = interleaveByTenant(std::move(batch));
  if (m_cfg.batching) {
    processBatched(ordered);
  } else {
    for (auto& r : ordered) processNaive(*r);
  }
}

std::vector<std::unique_ptr<Service::PendingRequest>>
Service::interleaveByTenant(
    std::deque<std::unique_ptr<PendingRequest>> batch) {
  std::vector<std::string> order;
  std::map<std::string, std::deque<std::unique_ptr<PendingRequest>>> byTenant;
  for (auto& r : batch) {
    if (byTenant.find(r->tenant) == byTenant.end()) order.push_back(r->tenant);
    byTenant[r->tenant].push_back(std::move(r));
  }
  // Round-robin across tenants in first-arrival order: a tenant that
  // queued 100 requests cannot starve one that queued 2.
  std::vector<std::unique_ptr<PendingRequest>> out;
  out.reserve(batch.size());
  bool any = true;
  while (any) {
    any = false;
    for (const std::string& t : order) {
      auto& dq = byTenant[t];
      if (dq.empty()) continue;
      out.push_back(std::move(dq.front()));
      dq.pop_front();
      any = true;
    }
  }
  return out;
}

void Service::processBatched(
    std::vector<std::unique_ptr<PendingRequest>>& reqs) {
  // Resolve scenes first; then lock every distinct scene in ascending id
  // order (deadlock-free: clients hold at most one scene mutex and never
  // m_mutex while acquiring it) and hold the locks across the drain so a
  // generation bump cannot evict records mid-trace.
  std::vector<std::shared_ptr<SceneState>> scenes(reqs.size());
  std::map<SceneId, std::shared_ptr<SceneState>> uniqueScenes;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    scenes[i] = findScene(reqs[i]->scene);
    if (scenes[i]) uniqueScenes.emplace(reqs[i]->scene, scenes[i]);
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(uniqueScenes.size());
  for (auto& [id, s] : uniqueScenes) locks.emplace_back(s->mu);

  std::vector<std::unique_ptr<RequestExec>> execs;
  std::vector<Tracer::DivQTileJob> jobs;
  std::vector<RequestExec*> pointwise;  // flux + radiometer work units
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    PendingRequest& req = *reqs[i];
    if (!scenes[i]) {
      rejectRequest(req, RejectReason::UnknownScene);
      continue;
    }
    SceneState& s = *scenes[i];
    if (req.generation != 0 && req.generation != s.generation) {
      rejectRequest(req, RejectReason::StaleGeneration);
      continue;
    }
    ensureSharedLocked(s, req.scene);

    auto exec = std::make_unique<RequestExec>();
    exec->req = &req;
    exec->scene = scenes[i];
    exec->servedGeneration = s.generation;
    const grid::Level& fine = s.grid->fineLevel();
    const CellRange roi =
        req.kind == PendingRequest::Kind::DivQ
            ? req.cells.grown(s.setup.roiHalo).intersect(fine.cells())
            : fine.cells();
    exec->tracer = makeSharedTracer(s, roi);

    if (req.kind == PendingRequest::Kind::DivQ) {
      // Spectral scenes drain through the exact same tile-job pool as
      // gray ones; flux/radiometer QoIs stay on the gray-mean tracer.
      if (!s.setup.bands.empty()) exec->spectral = makeSharedSpectral(s, roi);
      exec->out.assign(static_cast<std::size_t>(req.cells.volume()), 0.0);
      const core::MutableFieldView<double> sink(exec->out.data(), req.cells);
      for (const CellRange& tile :
           core::tileCells(req.cells, s.setup.trace.tileSize))
        jobs.push_back(Tracer::DivQTileJob{exec->tracer.get(), tile, sink,
                                           exec->spectral.get()});
    } else {
      pointwise.push_back(exec.get());
    }
    execs.push_back(std::move(exec));
  }

  // The coalesced drain: tiles from every request, every tenant, every
  // scene in this batch share one parallelFor over the one pool.
  Tracer::computeDivQBatch(jobs, m_pool);
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    m_tileJobs += jobs.size();
  }

  if (!pointwise.empty()) {
    const auto runOne = [&](std::int64_t i) {
      RequestExec& e = *pointwise[static_cast<std::size_t>(i)];
      const PendingRequest& r = *e.req;
      if (r.kind == PendingRequest::Kind::Flux) {
        e.fluxOut.reserve(r.faces.size());
        for (const auto& [cell, face] : r.faces)
          e.fluxOut.push_back(e.tracer->boundaryFlux(cell, face, r.fluxRays));
      } else {
        e.reading = core::evaluateRadiometer(*e.tracer, r.spec);
      }
    };
    if (m_pool != nullptr)
      m_pool->parallelFor(0, static_cast<std::int64_t>(pointwise.size()),
                          runOne);
    else
      for (std::size_t i = 0; i < pointwise.size(); ++i)
        runOne(static_cast<std::int64_t>(i));
  }

  locks.clear();  // updates may proceed; results are already materialized
  for (auto& exec : execs) completeRequest(*exec->req, *exec);
}

void Service::processNaive(PendingRequest& req) {
  auto scene = findScene(req.scene);
  if (!scene) {
    rejectRequest(req, RejectReason::UnknownScene);
    return;
  }
  RequestExec exec;
  {
    std::unique_lock<std::mutex> lk(scene->mu);
    SceneState& s = *scene;
    if (req.generation != 0 && req.generation != s.generation) {
      rejectRequest(req, RejectReason::StaleGeneration);
      return;
    }
    ensureFieldsLocked(s);

    // The one-solve-per-request baseline: every request re-fuses its own
    // records and stages its own private coarse copy — the redundant
    // pack + PCIe traffic cross-request batching eliminates.
    const PackedLevelField finePacked(viewsOf(s.fAbs, s.fSig, s.fCt));
    const PackedLevelField coarsePacked(viewsOf(s.cAbs, s.cSig, s.cCt));
    const int uploadId = m_naiveSeq.fetch_add(1, std::memory_order_relaxed);
    gpu::DeviceVar& dv = m_gdw->putPatchVarRaw(
        "svc.naive.packedRad", uploadId, coarsePacked.data(),
        coarsePacked.window(), sizeof(PackedCell));
    {
      std::lock_guard<std::mutex> slk(m_statsMutex);
      ++m_coarseUploads;
    }

    const grid::Level& fine = s.grid->fineLevel();
    const grid::Level& coarse = s.grid->coarseLevel();
    const CellRange roi =
        req.kind == PendingRequest::Kind::DivQ
            ? req.cells.grown(s.setup.roiHalo).intersect(fine.cells())
            : fine.cells();
    TraceLevel fineTL{LevelGeom::from(fine), viewsOf(s.fAbs, s.fSig, s.fCt),
                      roi, finePacked.view()};
    TraceLevel coarseTL{LevelGeom::from(coarse), RadiationFieldsView{},
                        coarse.cells(), PackedFieldView::fromDevice(dv)};
    Tracer tracer({fineTL, coarseTL}, wallsOf(s.setup.problem), s.setup.trace);

    exec.req = &req;
    exec.scene = scene;
    exec.servedGeneration = s.generation;
    switch (req.kind) {
      case PendingRequest::Kind::DivQ: {
        exec.out.assign(static_cast<std::size_t>(req.cells.volume()), 0.0);
        const core::MutableFieldView<double> sink(exec.out.data(), req.cells);
        if (s.setup.bands.empty()) {
          tracer.computeDivQ(req.cells, sink, m_pool);
        } else {
          // Naive-mode band loop over this request's private records —
          // bitwise the batched answer, at per-request pack/upload cost.
          SpectralTracer spectral({fineTL, coarseTL}, wallsOf(s.setup.problem),
                                  s.setup.trace, s.setup.bands);
          spectral.computeDivQ(req.cells, sink, m_pool);
        }
        break;
      }
      case PendingRequest::Kind::Flux: {
        exec.fluxOut.reserve(req.faces.size());
        for (const auto& [cell, face] : req.faces)
          exec.fluxOut.push_back(
              tracer.boundaryFlux(cell, face, req.fluxRays, m_pool));
        break;
      }
      case PendingRequest::Kind::Radiometer: {
        exec.reading = core::evaluateRadiometer(tracer, req.spec);
        break;
      }
    }
    m_gdw->removePatchVar("svc.naive.packedRad", uploadId);
  }
  completeRequest(req, exec);
}

void Service::rejectRequest(PendingRequest& req, RejectReason why) {
  if (req.admitted) {
    m_admission.release(req.tenant);
    req.admitted = false;
  }
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_rejected;
  }
  m_metrics.view("service.tenant." + req.tenant)
      .counter("rejected")
      .increment();
  switch (req.kind) {
    case PendingRequest::Kind::DivQ:
      req.divqPromise.set_value(Outcome<DivQResult>::rejected(why));
      break;
    case PendingRequest::Kind::Flux:
      req.fluxPromise.set_value(Outcome<FluxResult>::rejected(why));
      break;
    case PendingRequest::Kind::Radiometer:
      req.radPromise.set_value(Outcome<RadiometerResult>::rejected(why));
      break;
  }
}

void Service::completeRequest(PendingRequest& req, RequestExec& exec) {
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - req.submitTime)
          .count();
  if (req.admitted) {
    m_admission.release(req.tenant);
    req.admitted = false;
  }
  recordLatency(req.tenant, ms);
  switch (req.kind) {
    case PendingRequest::Kind::DivQ: {
      Outcome<DivQResult> o;
      o.value.window = req.cells;
      o.value.divQ = std::move(exec.out);
      o.value.generation = exec.servedGeneration;
      o.value.latencyMs = ms;
      req.divqPromise.set_value(std::move(o));
      break;
    }
    case PendingRequest::Kind::Flux: {
      Outcome<FluxResult> o;
      o.value.fluxes = std::move(exec.fluxOut);
      o.value.generation = exec.servedGeneration;
      o.value.latencyMs = ms;
      req.fluxPromise.set_value(std::move(o));
      break;
    }
    case PendingRequest::Kind::Radiometer: {
      Outcome<RadiometerResult> o;
      o.value.reading = exec.reading;
      o.value.generation = exec.servedGeneration;
      o.value.latencyMs = ms;
      req.radPromise.set_value(std::move(o));
      break;
    }
  }
}

void Service::recordLatency(const std::string& tenant, double ms) {
  double p50 = 0.0, p99 = 0.0;
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    ++m_completed;
    m_latencyMs.add(ms);
    if (ms > m_cfg.sloP99Ms) ++m_sloBreaches;
    p50 = m_latencyMs.p50();
    p99 = m_latencyMs.p99();
  }
  m_metrics.setGauge("service.p50_ms", p50);
  m_metrics.setGauge("service.p99_ms", p99);
  m_metrics.view("service.tenant." + tenant).counter("completed").increment();
}

ServiceStats Service::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> slk(m_statsMutex);
    out.submitted = m_submitted;
    out.completed = m_completed;
    out.rejected = m_rejected;
    out.coarseUploads = m_coarseUploads;
    out.generationEvictions = m_generationEvictions;
    out.batches = m_batches;
    out.tileJobs = m_tileJobs;
    out.sloBreaches = m_sloBreaches;
    out.faultsRetransmitted = m_faultsRetransmitted;
    out.faultsDelayed = m_faultsDelayed;
    out.faultsDeduplicated = m_faultsDeduplicated;
    out.faultsReordered = m_faultsReordered;
    out.p50Ms = m_latencyMs.p50();
    out.p99Ms = m_latencyMs.p99();
  }
  out.admission = m_admission.stats();
  return out;
}

DivQResult Service::solveDivQOneShot(const grid::Grid& grid,
                                     const core::RmcrtSetup& setup,
                                     const CellRange& cells) {
  const HostFields hf = buildHostFields(grid, setup.problem);
  const grid::Level& fine = grid.fineLevel();
  const grid::Level& coarse = grid.coarseLevel();
  const CellRange roi = cells.grown(setup.roiHalo).intersect(fine.cells());
  TraceLevel fineTL{LevelGeom::from(fine), viewsOf(hf.fAbs, hf.fSig, hf.fCt),
                    roi};
  TraceLevel coarseTL{LevelGeom::from(coarse),
                      viewsOf(hf.cAbs, hf.cSig, hf.cCt), coarse.cells()};
  DivQResult res;
  res.window = cells;
  res.divQ.assign(static_cast<std::size_t>(cells.volume()), 0.0);
  const core::MutableFieldView<double> sink(res.divQ.data(), cells);
  if (setup.bands.empty()) {
    Tracer tracer({fineTL, coarseTL}, wallsOf(setup.problem), setup.trace);
    tracer.computeDivQ(cells, sink);
  } else {
    SpectralTracer tracer({fineTL, coarseTL}, wallsOf(setup.problem),
                          setup.trace, setup.bands);
    tracer.computeDivQ(cells, sink);
  }
  return res;
}

FluxResult Service::solveFluxOneShot(
    const grid::Grid& grid, const core::RmcrtSetup& setup,
    const std::vector<std::pair<IntVector, IntVector>>& faces, int nRays) {
  const HostFields hf = buildHostFields(grid, setup.problem);
  const grid::Level& fine = grid.fineLevel();
  const grid::Level& coarse = grid.coarseLevel();
  TraceLevel fineTL{LevelGeom::from(fine), viewsOf(hf.fAbs, hf.fSig, hf.fCt),
                    fine.cells()};
  TraceLevel coarseTL{LevelGeom::from(coarse),
                      viewsOf(hf.cAbs, hf.cSig, hf.cCt), coarse.cells()};
  Tracer tracer({fineTL, coarseTL}, wallsOf(setup.problem), setup.trace);
  FluxResult res;
  res.fluxes.reserve(faces.size());
  for (const auto& [cell, face] : faces)
    res.fluxes.push_back(tracer.boundaryFlux(cell, face, nRays));
  return res;
}

RadiometerResult Service::solveRadiometerOneShot(
    const grid::Grid& grid, const core::RmcrtSetup& setup,
    const core::RadiometerSpec& spec) {
  const HostFields hf = buildHostFields(grid, setup.problem);
  const grid::Level& fine = grid.fineLevel();
  const grid::Level& coarse = grid.coarseLevel();
  TraceLevel fineTL{LevelGeom::from(fine), viewsOf(hf.fAbs, hf.fSig, hf.fCt),
                    fine.cells()};
  TraceLevel coarseTL{LevelGeom::from(coarse),
                      viewsOf(hf.cAbs, hf.cSig, hf.cCt), coarse.cells()};
  Tracer tracer({fineTL, coarseTL}, wallsOf(setup.problem), setup.trace);
  RadiometerResult res;
  res.reading = core::evaluateRadiometer(tracer, spec);
  return res;
}

}  // namespace rmcrt::service
