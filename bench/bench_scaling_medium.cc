/// \file bench_scaling_medium.cc
/// Regenerates paper Figure 2: GPU strong scaling of the MEDIUM 2-level
/// RMCRT benchmark (256^3 fine CFD mesh, 64^3 coarse radiation mesh,
/// RR:4, 100 rays/cell) for patch sizes 16^3 / 32^3 / 64^3.
///
/// Parts:
///  1. google-benchmark of the REAL distributed pipeline at laptop scale
///     (exercises scheduler + comm + tracer end to end);
///  2. the Figure 2 table from the machine model calibrated against this
///     host's measured kernel throughput.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "sim/calibration.h"
#include "sim/scaling_study.h"
#include "util/observability_cli.h"

namespace {

using namespace rmcrt;

/// Real end-to-end pipeline at reduced scale: 32^3 fine / 8^3 coarse.
void BM_DistributedPipeline(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;
  auto grid =
      grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                               IntVector(4), IntVector(8), IntVector(4));
  for (auto _ : state) {
    auto lb = std::make_shared<grid::LoadBalancer>(*grid, ranks);
    comm::Communicator world(ranks);
    std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
    for (int r = 0; r < ranks; ++r)
      scheds.push_back(
          std::make_unique<runtime::Scheduler>(grid, lb, world, r));
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&, r] {
        core::RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
        scheds[r]->executeTimestep();
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 32);
}
BENCHMARK(BM_DistributedPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void printFigure2() {
  using namespace rmcrt::sim;
  std::cout << "\n=== Paper Figure 2 reproduction ===\n\n";
  std::cout << "[Titan-default machine model]\n";
  mediumStudy().print(std::cout, titan());

  Calibration c;
  c.hostSegmentsPerSecond = measureKernelSegmentsPerSecond(16, 4);
  std::cout << "\n[calibrated: host kernel = " << c.hostSegmentsPerSecond / 1e6
            << " Mseg/s, K20X scale 12x]\n";
  mediumStudy().print(std::cout, calibrate(titan(), c));
  std::cout << "\nExpected shape (paper): larger patches are faster per "
               "GPU; each curve scales until patches/GPU reaches 1; the "
               "16^3 curve extends furthest.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printFigure2();
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
