/// \file bench_scaling_medium.cc
/// Regenerates paper Figure 2: GPU strong scaling of the MEDIUM 2-level
/// RMCRT benchmark (256^3 fine CFD mesh, 64^3 coarse radiation mesh,
/// RR:4, 100 rays/cell) for patch sizes 16^3 / 32^3 / 64^3.
///
/// Parts:
///  1. google-benchmark of the REAL distributed pipeline at laptop scale
///     (exercises scheduler + comm + tracer end to end; skipped by
///     --smoke);
///  2. the Figure 2 table from the machine model, both at Titan defaults
///     and calibrated from the committed kernel baseline
///     (BENCH_rmcrt_kernel.json — override with --calibration=<path>);
///  3. the full scaling study written as JSON (--json=<path>, default
///     BENCH_scaling.json) — the artifact CI's shape gate verifies.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "sim/calibration.h"
#include "sim/scaling_report.h"
#include "sim/scaling_study.h"
#include "util/observability_cli.h"

namespace {

using namespace rmcrt;

/// Real end-to-end pipeline at reduced scale: 32^3 fine / 8^3 coarse.
void BM_DistributedPipeline(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;
  auto grid =
      grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                               IntVector(4), IntVector(8), IntVector(4));
  for (auto _ : state) {
    auto lb = std::make_shared<grid::LoadBalancer>(*grid, ranks);
    comm::Communicator world(ranks);
    std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
    for (int r = 0; r < ranks; ++r)
      scheds.push_back(
          std::make_unique<runtime::Scheduler>(grid, lb, world, r));
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&, r] {
        core::RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
        scheds[r]->executeTimestep();
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 32);
}
BENCHMARK(BM_DistributedPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void printFigure2(const rmcrt::sim::Calibration& c) {
  using namespace rmcrt::sim;
  std::cout << "\n=== Paper Figure 2 reproduction ===\n\n";
  std::cout << "[Titan-default machine model]\n";
  mediumStudy().print(std::cout, titan());

  std::cout << "\n[calibrated: " << c.detail << " = "
            << c.hostSegmentsPerSecond / 1e6
            << " Mseg/s, K20X scale 12x]\n";
  mediumStudy().print(std::cout, calibrate(titan(), c));
  std::cout << "\nExpected shape (paper): larger patches are faster per "
               "GPU; each curve scales until patches/GPU reaches 1; the "
               "16^3 curve extends furthest.\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Flags (bench_rmcrt_kernel conventions, consumed before
  // google-benchmark sees the command line):
  //   --smoke               skip the google-benchmark pipeline suite;
  //                         print the study tables and write the JSON only
  //   --json=<path>         scaling-study output (default BENCH_scaling.json)
  //   --calibration=<path>  kernel baseline to calibrate from (default
  //                         BENCH_rmcrt_kernel.json; deterministic
  //                         fallback constants if missing)
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  bool smoke = false;
  std::string jsonPath = "BENCH_scaling.json";
  std::string calibrationPath = "BENCH_rmcrt_kernel.json";
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calibration=", 14) == 0) {
      calibrationPath = argv[i] + 14;
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  const rmcrt::sim::Calibration c =
      rmcrt::sim::calibrationFromBenchJson(calibrationPath);
  printFigure2(c);

  const rmcrt::sim::ScalingReport report =
      rmcrt::sim::collectScalingReport(c);
  std::ofstream out(jsonPath);
  rmcrt::sim::writeScalingReportJson(out, report, smoke);
  std::cout << "\nScaling study written to " << jsonPath
            << " (calibration source: "
            << rmcrt::sim::calibrationSourceName(c.source) << ")\n";

  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
