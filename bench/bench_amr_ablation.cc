/// \file bench_amr_ablation.cc
/// DESIGN.md D5: the multi-level AMR scheme versus the original
/// single-level RMCRT — the central design decision of the paper
/// (Section III: the single fine mesh replicated everywhere costs
/// O(N_total^2) communication and became "intractable ... beyond 256^3").
///
/// Parts:
///  1. measured: the REAL distributed pipeline at laptop scale, counting
///     actual bytes received per rank for both algorithms;
///  2. modeled: per-rank replication volume for the paper's problem sizes
///     (the 256^3 wall the paper describes), plus the weak-scaling O(N^2)
///     growth law that justified showing strong scaling only.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "sim/perf_model.h"

namespace {

using namespace rmcrt;

/// Bytes received per rank by the real pipeline.
std::uint64_t measurePipelineBytes(bool twoLevel, int ranks, int fineCells) {
  core::RmcrtSetup setup;
  setup.problem = core::uniformMedium(8.0, 1.0);  // short rays: cheap
  setup.trace.nDivQRays = 2;
  setup.roiHalo = 1;
  std::shared_ptr<grid::Grid> grid;
  if (twoLevel)
    grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                    IntVector(fineCells), IntVector(4),
                                    IntVector(fineCells / 4),
                                    IntVector(fineCells / 8));
  else
    grid = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                       IntVector(fineCells),
                                       IntVector(fineCells / 4));
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, ranks);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(
        std::make_unique<runtime::Scheduler>(grid, lb, world, r));
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      if (twoLevel)
        core::RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
      else
        core::RmcrtComponent::registerSingleLevelPipeline(*scheds[r], setup);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (auto& s : scheds) total += s->stats().bytesReceived;
  return total / static_cast<std::uint64_t>(ranks);
}

void BM_SingleLevelPipeline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(measurePipelineBytes(false, 4, 32));
}
BENCHMARK(BM_SingleLevelPipeline)->Unit(benchmark::kMillisecond);

void BM_TwoLevelPipeline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(measurePipelineBytes(true, 4, 32));
}
BENCHMARK(BM_TwoLevelPipeline)->Unit(benchmark::kMillisecond);

void printAblation() {
  using namespace rmcrt::sim;
  std::cout << "\n=== D5 ablation: single-level vs 2-level RMCRT ===\n\n";

  std::cout << "[measured: real pipeline, 32^3 fine, 4 ranks, bytes "
               "received per rank]\n";
  const auto single = measurePipelineBytes(false, 4, 32);
  const auto two = measurePipelineBytes(true, 4, 32);
  std::cout << "  single-level: " << std::setw(10) << single / 1024
            << " KiB/rank\n  two-level   : " << std::setw(10) << two / 1024
            << " KiB/rank   (" << std::fixed << std::setprecision(1)
            << static_cast<double>(single) / static_cast<double>(two)
            << "x less)\n";

  std::cout << "\n[modeled: per-rank replication volume at paper scale "
               "(1024 ranks)]\n";
  std::cout << std::setw(12) << "fine mesh" << std::setw(22)
            << "single-level MB/rank" << std::setw(20)
            << "2-level MB/rank\n";
  for (int n : {128, 256, 512}) {
    ProblemConfig p;
    p.fineCellsPerSide = n;
    const double share = 1.0 - 1.0 / 1024.0;
    const double singleMB = static_cast<double>(p.fineCells()) *
                            ProblemConfig::bytesPerPropertyCell * share /
                            1048576.0;
    const double twoMB = p.replicationBytesPerRank(1024) / 1048576.0;
    std::cout << std::setw(9) << n << "^3" << std::setw(20)
              << std::setprecision(1) << singleMB << std::setw(20) << twoMB
              << (singleMB > 2600 ? "   <- exceeds 1/10 node RAM (paper: "
                                    "intractable beyond 256^3)"
                                  : "")
              << "\n";
  }

  std::cout << "\n[modeled: weak scaling — why the paper shows strong "
               "scaling only]\n";
  std::cout << std::setw(10) << "ranks" << std::setw(26)
            << "single-level agg. TB" << std::setw(22)
            << "2-level agg. TB\n";
  for (const auto& w :
       weakScalingCommVolume(mediumProblem(), {64, 256, 1024, 4096})) {
    std::cout << std::setw(10) << w.ranks << std::setw(24)
              << std::setprecision(2) << w.aggregateSingleLevelBytes / 1e12
              << std::setw(22) << w.aggregateTwoLevelBytes / 1e12 << "\n";
  }
  std::cout << "(aggregate volume grows as O(P^2) for both — the 2-level "
               "scheme cuts the constant by RR^3 = 64; the growth law is "
               "why weak scaling is omitted, paper Section V)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printAblation();
  return 0;
}
