/// \file bench_gpu_dw.cc
/// Section III-C ablation (DESIGN.md D2): the GPU DataWarehouse *level
/// database* versus redundant per-patch coarse copies. Measures, on the
/// simulated device, (a) PCIe bytes and (b) peak device memory as
/// resident patch-task count grows, and shows where per-patch copies
/// exceed the K20X's 6 GB while the shared level database stays flat.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "gpu/gpu_data_warehouse.h"
#include "sim/workload.h"

namespace {

using namespace rmcrt;
using grid::CCVariable;
using grid::CellRange;

CCVariable<double> makeCoarseVar(int side) {
  return CCVariable<double>(CellRange(IntVector(0), IntVector(side)), 0.5);
}

void BM_LevelDbGetOrUpload(benchmark::State& state) {
  gpu::GpuDevice dev;
  gpu::GpuDataWarehouse dw(dev, gpu::GpuDataWarehouse::Mode::LevelDatabase);
  CCVariable<double> coarse = makeCoarseVar(32);
  int patch = 0;
  for (auto _ : state) {
    auto& dv = dw.getOrUploadLevelVar("abskg", 0, coarse, patch++);
    benchmark::DoNotOptimize(&dv);
  }
}
BENCHMARK(BM_LevelDbGetOrUpload);

void BM_PerPatchUpload(benchmark::State& state) {
  gpu::GpuDevice::Config cfg;
  cfg.globalMemoryBytes = 64ull << 30;  // headroom: measure time not OOM
  gpu::GpuDevice dev(cfg);
  gpu::GpuDataWarehouse dw(dev, gpu::GpuDataWarehouse::Mode::PerPatchCopies);
  CCVariable<double> coarse = makeCoarseVar(32);
  int patch = 0;
  for (auto _ : state) {
    auto& dv = dw.getOrUploadLevelVar("abskg", 0, coarse, patch++);
    benchmark::DoNotOptimize(&dv);
    if (patch % 64 == 0) dw.clear();
  }
}
BENCHMARK(BM_PerPatchUpload);

void printAblation() {
  std::cout << "\n=== Section III-C ablation: level database vs per-patch "
               "coarse copies ===\n\n";
  std::cout << "LARGE problem coarse level = 128^3 x (abskg+sigmaT4+cellType)"
               " = "
            << std::fixed << std::setprecision(1)
            << 128.0 * 128 * 128 *
                   rmcrt::sim::ProblemConfig::bytesPerPropertyCell / 1048576.0
            << " MiB per copy; K20X budget 6144 MiB.\n\n";
  std::cout << std::setw(18) << "resident tasks" << std::setw(22)
            << "level-DB device MiB" << std::setw(22)
            << "per-patch device MiB" << std::setw(14) << "fits 6 GB?\n";
  rmcrt::sim::ProblemConfig p = rmcrt::sim::largeProblem(64);
  for (int tasks : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double shared = p.deviceBytesNeeded(tasks, false) / 1048576.0;
    const double copies = p.deviceBytesNeeded(tasks, true) / 1048576.0;
    std::cout << std::setw(18) << tasks << std::setw(22) << std::setprecision(0)
              << shared << std::setw(22) << copies << std::setw(13)
              << (copies <= 6144.0 ? "both" : (shared <= 6144.0 ? "DB only"
                                                                : "neither"))
              << "\n";
  }

  // And demonstrate it on the simulated device with a scaled-down "GPU".
  std::cout << "\n[simulated device, 64 MiB budget, 2 MiB coarse level]\n";
  for (auto mode : {gpu::GpuDataWarehouse::Mode::LevelDatabase,
                    gpu::GpuDataWarehouse::Mode::PerPatchCopies}) {
    gpu::GpuDevice::Config cfg;
    cfg.globalMemoryBytes = 64 << 20;
    gpu::GpuDevice dev(cfg);
    gpu::GpuDataWarehouse dw(dev, mode);
    CCVariable<double> coarse = makeCoarseVar(64);  // 2 MiB
    int uploaded = 0;
    try {
      for (int patch = 0; patch < 256; ++patch) {
        dw.getOrUploadLevelVar("abskg", 0, coarse, patch);
        ++uploaded;
      }
    } catch (const gpu::DeviceOutOfMemory&) {
    }
    std::cout << "  "
              << (mode == gpu::GpuDataWarehouse::Mode::LevelDatabase
                      ? "level database "
                      : "per-patch copy ")
              << ": " << uploaded << "/256 tasks staged, PCIe "
              << dev.stats().h2dBytes / 1048576.0 << " MiB, peak device "
              << dev.stats().peakBytesInUse / 1048576.0 << " MiB\n";
  }
  std::cout << "\nPaper reference: the level database 'effectively "
               "minimized PCIe transfers and ultimately allowed multiple "
               "mesh patches ... to run concurrently on the GPU while "
               "sharing data from the coarse radiation mesh.'\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printAblation();
  return 0;
}
