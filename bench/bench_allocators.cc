/// \file bench_allocators.cc
/// Reproduces the paper's Section IV-B memory-allocation findings:
///  * mixing persistent small allocations with transient large ones
///    fragments the general-purpose heap ("the heap ... grew continually,
///    acting as though a significant memory leak still existed");
///  * routing large transients to mmap and small transients to a
///    lock-free pool keeps the footprint flat and improves multi-threaded
///    small-allocation throughput.
///
/// Parts: google-benchmark throughput comparisons, then the
/// fragmentation experiment with heap probes.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "mem/allocators.h"
#include "mem/heap_probe.h"
#include "mem/lockfree_pool.h"

namespace {

using namespace rmcrt::mem;

void BM_MallocSmall(benchmark::State& state) {
  for (auto _ : state) {
    void* p = std::malloc(64);
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
}
BENCHMARK(BM_MallocSmall)->Threads(1)->Threads(4);

void BM_LockFreePoolSmall(benchmark::State& state) {
  static LockFreePool pool(64, 4096);
  for (auto _ : state) {
    void* p = pool.allocate();
    benchmark::DoNotOptimize(p);
    pool.deallocate(p);
  }
}
BENCHMARK(BM_LockFreePoolSmall)->Threads(1)->Threads(4);

void BM_PoolRouterMixed(benchmark::State& state) {
  auto& r = PoolRouter::instance();
  int i = 0;
  for (auto _ : state) {
    const std::size_t sz = 16u << (i++ % 8);
    void* p = r.allocate(sz);
    benchmark::DoNotOptimize(p);
    r.deallocate(p, sz);
  }
}
BENCHMARK(BM_PoolRouterMixed)->Threads(1)->Threads(4);

void BM_MallocLargeTransient(benchmark::State& state) {
  const std::size_t sz = 4 << 20;
  for (auto _ : state) {
    void* p = std::malloc(sz);
    std::memset(p, 1, 4096);  // touch first page
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
}
BENCHMARK(BM_MallocLargeTransient);

void BM_MmapLargeTransient(benchmark::State& state) {
  const std::size_t sz = 4 << 20;
  for (auto _ : state) {
    void* p = MmapArena::map(sz);
    std::memset(p, 1, 4096);
    benchmark::DoNotOptimize(p);
    MmapArena::unmap(p, sz);
  }
}
BENCHMARK(BM_MmapLargeTransient);

/// The Section IV-B fragmentation scenario: persistent small allocations
/// interleaved with transient large buffers (MPI messages /
/// GridVariables). Heap mode feeds everything to malloc; hybrid mode
/// sends large transients to mmap and small persistents to the pool.
void fragmentationExperiment() {
  constexpr int kRounds = 400;
  constexpr int kSmallPerRound = 400;
  constexpr std::size_t kSmall = 96;
  // Transient buffers must sit BELOW glibc's mmap threshold (128 KiB) or
  // malloc itself routes them to mmap and hides the effect; sizes vary
  // per round so freed holes rarely fit the next round's requests —
  // exactly the paper's "persistent small allocations mixed with
  // transient large allocations".
  constexpr std::size_t kLargeBase = 24 << 10;

  auto run = [&](bool hybrid) {
    std::vector<void*> persistent;
    const HeapSnapshot before = probeHeap();
    const auto mmapBefore = MmapArena::stats().bytesMapped;
    for (int round = 0; round < kRounds; ++round) {
      const std::size_t large = kLargeBase * (1 + round % 5);
      // Transient buffers come and go within the round...
      void* bufs[8];
      for (auto& b : bufs) {
        b = hybrid ? MmapArena::map(large) : std::malloc(large);
        std::memset(b, 1, large);
      }
      // ...while persistent small objects allocated meanwhile pin the
      // top of the heap above the holes the transients leave behind.
      for (int i = 0; i < kSmallPerRound; ++i) {
        persistent.push_back(hybrid
                                 ? PoolRouter::instance().allocate(kSmall)
                                 : std::malloc(kSmall));
      }
      for (auto& b : bufs) {
        if (hybrid)
          MmapArena::unmap(b, large);
        else
          std::free(b);
      }
    }
    const HeapSnapshot after = probeHeap();
    const auto mmapAfter = MmapArena::stats().bytesMapped;
    const double liveSmallMB =
        kRounds * kSmallPerRound * kSmall / 1048576.0;
    const double heapGrowthMB =
        (after.heapBytesTotal > before.heapBytesTotal
             ? after.heapBytesTotal - before.heapBytesTotal
             : 0) /
        1048576.0;
    const double heapHeldFreeMB =
        (after.heapBytesFree > before.heapBytesFree
             ? after.heapBytesFree - before.heapBytesFree
             : 0) /
        1048576.0;
    const double mmapGrowthMB =
        (mmapAfter > mmapBefore ? mmapAfter - mmapBefore : 0) / 1048576.0;
    std::cout << "  " << (hybrid ? "mmap+pool (paper)" : "heap only        ")
              << ": live payload " << std::fixed << std::setprecision(1)
              << liveSmallMB << " MB | heap growth " << heapGrowthMB
              << " MB (of which held-free/fragmented " << heapHeldFreeMB
              << " MB) | mmap live growth " << mmapGrowthMB << " MB"
              << (after.valid ? "" : " [mallinfo2 unavailable]") << "\n";
    for (void* p : persistent) {
      if (hybrid)
        PoolRouter::instance().deallocate(p, kSmall);
      else
        std::free(p);
    }
  };

  std::cout << "\n=== Section IV-B fragmentation experiment ===\n"
            << "(persistent small allocations interleaved with transient "
               "24-120 KiB buffers; heap growth beyond the live payload "
               "is the fragmentation/overhead the paper fought — the "
               "hybrid scheme keeps the heap flat by construction)\n\n";
  run(false);
  run(true);
  std::cout << "\nPaper reference: custom allocators reduced fragmentation "
               "enough to run at the edge of nodal memory and improved "
               "local-communication throughput 2-4X.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fragmentationExperiment();
  return 0;
}
