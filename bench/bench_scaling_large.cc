/// \file bench_scaling_large.cc
/// Regenerates paper Figure 3: GPU strong scaling of the LARGE 2-level
/// RMCRT benchmark (512^3 fine / 128^3 coarse, 136.31M cells, RR:4,
/// 100 rays/cell) for patch sizes 16^3 / 32^3 / 64^3, to 16,384 GPUs,
/// including the Section V parallel-efficiency headline numbers (Eq. 3):
/// 96% from 4096->8192 GPUs and 89% from 4096->16,384.
///
/// --json=<path> (default BENCH_scaling.json) writes the full study —
/// MEDIUM + LARGE sweeps, Table I comm rows, Eq. 3 headlines, for the
/// Titan-default and kernel-calibrated machine models — as the
/// machine-readable artifact CI's shape gate (scaling_reproduction_test
/// + check_bench_regression.py --mode scaling) verifies. --smoke skips
/// the google-benchmark kernel suite; the study itself is pure
/// deterministic model arithmetic and is always complete.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "sim/calibration.h"
#include "sim/scaling_report.h"
#include "sim/scaling_study.h"
#include "util/observability_cli.h"

namespace {

using namespace rmcrt;

/// The real multi-level kernel at one-patch scale — the quantity the
/// model is calibrated from.
void BM_MultiLevelTracePatch(benchmark::State& state) {
  const int patchSize = static_cast<int>(state.range(0));
  auto grid = grid::Grid::makeTwoLevel(
      Vector(0.0), Vector(1.0), IntVector(std::max(16, 2 * patchSize)),
      IntVector(4), IntVector(patchSize),
      IntVector(std::max(1, std::max(16, 2 * patchSize) / 4)));
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 2;
  setup.roiHalo = 4;
  for (auto _ : state) {
    auto divQ = core::RmcrtComponent::solveSerialTwoLevel(*grid, setup);
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() * grid->fineLevel().numCells() *
                          setup.trace.nDivQRays);
}
BENCHMARK(BM_MultiLevelTracePatch)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void printFigure3(const rmcrt::sim::Calibration& c) {
  using namespace rmcrt::sim;
  std::cout << "\n=== Paper Figure 3 reproduction ===\n\n";
  const MachineModel m = titan();
  std::cout << "[Titan-default machine model]\n";
  largeStudy().print(std::cout, m);

  const MachineModel cal = calibrate(titan(), c);
  std::cout << "\n[calibrated: " << c.detail << " = "
            << c.hostSegmentsPerSecond / 1e6 << " Mseg/s, K20X scale 12x]\n";
  largeStudy().print(std::cout, cal);

  std::cout << "\nParallel efficiency per Eq. 3 (16^3 patches):\n";
  for (const MachineModel* mm : {&m, &cal}) {
    std::cout << "  " << (mm == &m ? "default " : "calibrated")
              << ": eff(4096->8192) = " << std::fixed << std::setprecision(1)
              << largeProblemEfficiency(*mm, 16, 4096, 8192) * 100
              << "%,  eff(4096->16384) = "
              << largeProblemEfficiency(*mm, 16, 4096, 16384) * 100 << "%\n";
  }
  std::cout << "  paper   : eff(4096->8192) = 96%, eff(4096->16384) = 89%\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Flags (bench_rmcrt_kernel conventions, consumed before
  // google-benchmark sees the command line):
  //   --smoke               skip the google-benchmark kernel suite;
  //                         print the study tables and write the JSON only
  //   --json=<path>         scaling-study output (default BENCH_scaling.json)
  //   --calibration=<path>  kernel baseline to calibrate from (default
  //                         BENCH_rmcrt_kernel.json; deterministic
  //                         fallback constants if missing)
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  bool smoke = false;
  std::string jsonPath = "BENCH_scaling.json";
  std::string calibrationPath = "BENCH_rmcrt_kernel.json";
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calibration=", 14) == 0) {
      calibrationPath = argv[i] + 14;
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  const rmcrt::sim::Calibration c =
      rmcrt::sim::calibrationFromBenchJson(calibrationPath);
  printFigure3(c);

  const rmcrt::sim::ScalingReport report =
      rmcrt::sim::collectScalingReport(c);
  std::ofstream out(jsonPath);
  rmcrt::sim::writeScalingReportJson(out, report, smoke);
  std::cout << "\nScaling study written to " << jsonPath
            << " (calibration source: "
            << rmcrt::sim::calibrationSourceName(c.source) << ")\n";

  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
