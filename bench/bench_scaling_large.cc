/// \file bench_scaling_large.cc
/// Regenerates paper Figure 3: GPU strong scaling of the LARGE 2-level
/// RMCRT benchmark (512^3 fine / 128^3 coarse, 136.31M cells, RR:4,
/// 100 rays/cell) for patch sizes 16^3 / 32^3 / 64^3, to 16,384 GPUs,
/// including the Section V parallel-efficiency headline numbers (Eq. 3):
/// 96% from 4096->8192 GPUs and 89% from 4096->16,384.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "sim/calibration.h"
#include "sim/scaling_study.h"
#include "util/observability_cli.h"

namespace {

using namespace rmcrt;

/// The real multi-level kernel at one-patch scale — the quantity the
/// model is calibrated from.
void BM_MultiLevelTracePatch(benchmark::State& state) {
  const int patchSize = static_cast<int>(state.range(0));
  auto grid = grid::Grid::makeTwoLevel(
      Vector(0.0), Vector(1.0), IntVector(std::max(16, 2 * patchSize)),
      IntVector(4), IntVector(patchSize),
      IntVector(std::max(1, std::max(16, 2 * patchSize) / 4)));
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 2;
  setup.roiHalo = 4;
  for (auto _ : state) {
    auto divQ = core::RmcrtComponent::solveSerialTwoLevel(*grid, setup);
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() * grid->fineLevel().numCells() *
                          setup.trace.nDivQRays);
}
BENCHMARK(BM_MultiLevelTracePatch)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void printFigure3() {
  using namespace rmcrt::sim;
  std::cout << "\n=== Paper Figure 3 reproduction ===\n\n";
  const MachineModel m = titan();
  std::cout << "[Titan-default machine model]\n";
  largeStudy().print(std::cout, m);

  Calibration c;
  c.hostSegmentsPerSecond = measureKernelSegmentsPerSecond(16, 4);
  const MachineModel cal = calibrate(titan(), c);
  std::cout << "\n[calibrated: host kernel = "
            << c.hostSegmentsPerSecond / 1e6 << " Mseg/s, K20X scale 12x]\n";
  largeStudy().print(std::cout, cal);

  std::cout << "\nParallel efficiency per Eq. 3 (16^3 patches):\n";
  for (const MachineModel* mm : {&m, &cal}) {
    std::cout << "  " << (mm == &m ? "default " : "calibrated")
              << ": eff(4096->8192) = " << std::fixed << std::setprecision(1)
              << largeProblemEfficiency(*mm, 16, 4096, 8192) * 100
              << "%,  eff(4096->16384) = "
              << largeProblemEfficiency(*mm, 16, 4096, 16384) * 100 << "%\n";
  }
  std::cout << "  paper   : eff(4096->8192) = 96%, eff(4096->16384) = 89%\n";
}

}  // namespace

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printFigure3();
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
