/// \file bench_rmcrt_kernel.cc
/// The RMCRT kernel itself (paper Sections III/V setup): marching
/// throughput versus patch size (the 16^3/32^3/64^3 sweep that drives
/// the scaling figures), versus ray count, single- versus multi-level,
/// and the DOM baseline for contrast (the solver RMCRT replaces inside
/// ARCHES). Ends with the measured segments/s per patch size — the
/// calibration inputs of the performance model.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "amr/amr_engine.h"
#include "core/dom_solver.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "mem/mmap_arena.h"
#include "runtime/simulation_controller.h"
#include "runtime/snapshot.h"
#include "sim/calibration.h"
#include "util/observability_cli.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timers.h"

namespace {

using namespace rmcrt;
using namespace rmcrt::core;

/// --packed / --unpacked: which kernel data layout the google-benchmark
/// suite runs (the JSON baseline always measures both).
bool g_packedLayout = true;

struct KernelFixture {
  std::shared_ptr<grid::Grid> grid;
  grid::CCVariable<double> abskg, sig;
  grid::CCVariable<grid::CellType> ct;

  explicit KernelFixture(int n)
      : grid(grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                         IntVector(n), IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), grid::CellType::Flow) {
    initializeProperties(grid->fineLevel(), burnsChriston(), abskg, sig, ct);
  }

  Tracer tracer(int rays, bool packed = g_packedLayout) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<grid::CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    TraceConfig cfg;
    cfg.nDivQRays = rays;
    cfg.usePackedFields = packed;
    return Tracer({tl}, WallProperties{0.0, 1.0}, cfg);
  }
};

void BM_TraceSingleLevel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rays = static_cast<int>(state.range(1));
  KernelFixture fx(n);
  Tracer tracer = fx.tracer(rays);
  grid::CCVariable<double> divQ(fx.grid->fineLevel().cells(), 0.0);
  for (auto _ : state) {
    tracer.computeDivQ(fx.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ));
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.grid->fineLevel().numCells() * rays);
  state.counters["Mseg/s"] = benchmark::Counter(
      static_cast<double>(tracer.segmentCount()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSingleLevel)
    ->Args({16, 4})
    ->Args({16, 16})
    ->Args({16, 64})
    ->Args({32, 4})
    ->Unit(benchmark::kMillisecond);

void BM_TraceSingleLevelThreaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rays = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  KernelFixture fx(n);
  Tracer tracer = fx.tracer(rays);
  ThreadPool pool(static_cast<std::size_t>(threads));
  grid::CCVariable<double> divQ(fx.grid->fineLevel().cells(), 0.0);
  for (auto _ : state) {
    tracer.computeDivQ(fx.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ),
                       threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.grid->fineLevel().numCells() * rays);
  state.counters["Mseg/s"] = benchmark::Counter(
      static_cast<double>(tracer.segmentCount()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSingleLevelThreaded)
    ->Args({32, 16, 1})
    ->Args({32, 16, 2})
    ->Args({32, 16, 4})
    ->Args({32, 16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DomSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int order = static_cast<int>(state.range(1));
  KernelFixture fx(n);
  DomSolver solver(
      LevelGeom::from(fx.grid->fineLevel()),
      RadiationFieldsView{FieldView<double>::fromHost(fx.abskg),
                          FieldView<double>::fromHost(fx.sig),
                          FieldView<grid::CellType>::fromHost(fx.ct)},
      WallProperties{0.0, 1.0}, order);
  grid::CCVariable<double> divQ(fx.grid->fineLevel().cells(), 0.0);
  for (auto _ : state) {
    solver.computeDivQ(fx.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ));
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.grid->fineLevel().numCells());
}
BENCHMARK(BM_DomSolve)->Args({16, 2})->Args({16, 4})->Args({32, 4})
    ->Unit(benchmark::kMillisecond);

void BM_BoundaryFlux(benchmark::State& state) {
  KernelFixture fx(16);
  Tracer tracer = fx.tracer(4);
  for (auto _ : state) {
    const double q =
        tracer.boundaryFlux(IntVector(0, 8, 8), IntVector(-1, 0, 0), 100);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BoundaryFlux);

/// A/B of the two kernel data layouts on the same fixture, single
/// thread: the full divQ solve, and a segment microbench that times a
/// fixed deterministic ray bundle through Tracer::traceRay — the march
/// loop with everything but cell crossings stripped away. Both layouts
/// must agree bitwise.
struct LayoutReport {
  double packedMsegPerS = 0.0;
  double unpackedMsegPerS = 0.0;
  double divqSpeedup = 0.0;
  bool divqBitwise = true;
  double segPackedMsegPerS = 0.0;
  double segUnpackedMsegPerS = 0.0;
  double segSpeedup = 0.0;
  bool segBitwise = true;
};

/// A/B of the scalar packed march against the 8-wide SIMD packet march
/// (marchPacket8, DESIGN.md §14) on the segment microbench's ray bundle,
/// through the batched Tracer::traceRays entry point both sides use in
/// production. The SIMD path agrees with the scalar golden reference
/// only within a ULP tolerance (vectorized exp), so the report carries
/// the measured worst-case relative error instead of a bitwise flag.
struct SimdReport {
  bool supported = false;  ///< Tracer::simdSupported() on this host
  const char* isa = "none";  ///< Tracer::simdIsa(): kernel the host picked
  int gridN = 0;           ///< fixture edge cells (full mode: 128, the
                           ///< paper's per-rank patch scale, DRAM-resident)
  double scalarMsegPerS = 0.0;
  double simdMsegPerS = 0.0;
  double speedup = 0.0;
  double maxRelErr = 0.0;  ///< worst per-ray |simd - scalar| / |scalar|
};

LayoutReport measureLayoutAB(bool smoke) {
  const int n = smoke ? 16 : 32;
  const int rays = smoke ? 4 : 16;
  const int repeats = smoke ? 3 : 5;
  KernelFixture fx(n);
  Tracer packed = fx.tracer(rays, /*packed=*/true);
  Tracer legacy = fx.tracer(rays, /*packed=*/false);
  const CellRange cells = fx.grid->fineLevel().cells();
  LayoutReport rep;

  // Full divQ solve, serial, best-of-N per layout.
  grid::CCVariable<double> divQPacked(cells, 0.0), divQLegacy(cells, 0.0);
  const auto timeDivQ = [&](Tracer& t, grid::CCVariable<double>& out) {
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t segments = 0;
    for (int r = 0; r < repeats; ++r) {
      t.resetSegmentCount();
      Timer timer;
      t.computeDivQ(cells, MutableFieldView<double>::fromHost(out));
      best = std::min(best, timer.seconds());
      segments = t.segmentCount();
    }
    return static_cast<double>(segments) / best / 1e6;
  };
  rep.packedMsegPerS = timeDivQ(packed, divQPacked);
  rep.unpackedMsegPerS = timeDivQ(legacy, divQLegacy);
  rep.divqSpeedup = rep.packedMsegPerS / rep.unpackedMsegPerS;
  for (const auto& c : cells)
    if (divQPacked[c] != divQLegacy[c]) rep.divqBitwise = false;

  // Segment microbench: the same deterministic ray bundle (seeded by
  // (bundle, ray) alone) through both layouts.
  const int nRays = smoke ? 20000 : 100000;
  const Vector center = fx.grid->fineLevel().physLow() +
                        (fx.grid->fineLevel().physHigh() -
                         fx.grid->fineLevel().physLow()) *
                            Vector(0.5);
  const auto timeBundle = [&](Tracer& t, double& sumI) {
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t segments = 0;
    for (int r = 0; r < repeats; ++r) {
      t.resetSegmentCount();
      double acc = 0.0;
      Timer timer;
      for (int i = 0; i < nRays; ++i) {
        Rng rng(/*domainSeed=*/97, IntVector(i, 0, 0), /*ray=*/0);
        const Vector dir = isotropicDirection(rng);
        acc += t.traceRay(center, dir);
      }
      best = std::min(best, timer.seconds());
      segments = t.segmentCount();
      sumI = acc;
    }
    return static_cast<double>(segments) / best / 1e6;
  };
  double sumPacked = 0.0, sumLegacy = 0.0;
  rep.segPackedMsegPerS = timeBundle(packed, sumPacked);
  rep.segUnpackedMsegPerS = timeBundle(legacy, sumLegacy);
  rep.segSpeedup = rep.segPackedMsegPerS / rep.segUnpackedMsegPerS;
  rep.segBitwise = sumPacked == sumLegacy;
  return rep;
}

SimdReport measureSimdAB(bool smoke) {
  // Full mode uses a 128-cell fixture: that matches the paper's
  // per-rank patch scale, the property field no longer fits in L2, and
  // the scalar march goes memory-latency-bound — the regime the packet
  // kernels are built for (their gathers overlap misses across lanes
  // and packets). Smoke mode keeps the small L2-resident grid for CI
  // turnaround.
  const int n = smoke ? 16 : 128;
  const int repeats = smoke ? 3 : 5;
  const int nRays = smoke ? 20000 : 100000;
  KernelFixture fx(n);
  SimdReport rep;
  rep.supported = Tracer::simdSupported();
  rep.isa = Tracer::simdIsa();
  rep.gridN = n;

  // The same deterministic center bundle as the layout segment
  // microbench, but batched so both paths go through traceRays.
  const Vector center = fx.grid->fineLevel().physLow() +
                        (fx.grid->fineLevel().physHigh() -
                         fx.grid->fineLevel().physLow()) *
                            Vector(0.5);
  std::vector<Vector> origins(static_cast<std::size_t>(nRays), center);
  std::vector<Vector> dirs(static_cast<std::size_t>(nRays));
  for (int i = 0; i < nRays; ++i) {
    Rng rng(/*domainSeed=*/97, IntVector(i, 0, 0), /*ray=*/0);
    dirs[static_cast<std::size_t>(i)] = isotropicDirection(rng);
  }

  const auto timeBatch = [&](bool simd, std::vector<double>& out) {
    TraceConfig cfg;
    cfg.nDivQRays = 16;
    cfg.useSimd = simd;
    TraceLevel tl{LevelGeom::from(fx.grid->fineLevel()),
                  RadiationFieldsView{
                      FieldView<double>::fromHost(fx.abskg),
                      FieldView<double>::fromHost(fx.sig),
                      FieldView<grid::CellType>::fromHost(fx.ct)},
                  fx.grid->fineLevel().cells()};
    Tracer tracer({tl}, WallProperties{0.0, 1.0}, cfg);
    out.assign(static_cast<std::size_t>(nRays), 0.0);
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t segments = 0;
    for (int r = 0; r < repeats; ++r) {
      tracer.resetSegmentCount();
      Timer timer;
      tracer.traceRays(nRays, origins.data(), dirs.data(), out.data());
      best = std::min(best, timer.seconds());
      segments = tracer.segmentCount();
    }
    return static_cast<double>(segments) / best / 1e6;
  };
  std::vector<double> iScalar, iSimd;
  rep.scalarMsegPerS = timeBatch(/*simd=*/false, iScalar);
  rep.simdMsegPerS = timeBatch(/*simd=*/true, iSimd);
  rep.speedup = rep.simdMsegPerS / rep.scalarMsegPerS;
  for (int i = 0; i < nRays; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    const double denom = std::max(std::abs(iScalar[s]), 1e-300);
    rep.maxRelErr =
        std::max(rep.maxRelErr, std::abs(iSimd[s] - iScalar[s]) / denom);
  }
  return rep;
}

/// Sweep thread counts over the Burns & Christon single-level trace and
/// write a machine-readable baseline (BENCH_rmcrt_kernel.json) so later
/// PRs have a perf trajectory to compare against. Also cross-checks that
/// every threaded result is bitwise identical to the serial one, and
/// appends the packed-vs-unpacked layout A/B plus the segment
/// microbench.
void writeThreadSweepJson(const std::string& path, bool smoke) {
  // The sweep fixture is identical in smoke and full mode so a CI smoke
  // run is directly comparable to the committed full-mode baseline (the
  // perf gate divides one by the other; a smaller smoke problem would
  // shift the per-ray-setup/per-segment cost ratio and skew Mseg/s).
  // Smoke saves its time by measuring fewer repeats and thread counts.
  const int n = 32;
  const int rays = 16;
  const int repeats = smoke ? 2 : 5;
  KernelFixture fx(n);
  Tracer tracer = fx.tracer(rays);
  const CellRange cells = fx.grid->fineLevel().cells();

  grid::CCVariable<double> serial(cells, 0.0);
  tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(serial));

  struct Sample {
    int threads;
    double seconds;
    double msegPerS;
    double speedup;
    bool bitwise;
    /// More workers than hardware threads: the sample measures scheduling
    /// overhead, not scaling — the regression gate must not treat a
    /// sub-1.0 speedup here as a regression (CI runners vary in width).
    bool oversubscribed;
  };
  std::vector<Sample> samples;
  double serialSeconds = 0.0;
  const std::vector<int> threadCounts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (int threads : threadCounts) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    grid::CCVariable<double> divQ(cells, 0.0);
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t segments = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      tracer.resetSegmentCount();
      Timer timer;
      tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(divQ),
                         threads > 1 ? &pool : nullptr);
      best = std::min(best, timer.seconds());
      segments = tracer.segmentCount();
    }
    bool bitwise = true;
    for (const auto& c : cells)
      if (divQ[c] != serial[c]) bitwise = false;
    if (threads == 1) serialSeconds = best;
    samples.push_back(Sample{threads, best,
                             static_cast<double>(segments) / best / 1e6,
                             serialSeconds / best, bitwise,
                             static_cast<unsigned>(threads) >
                                 std::thread::hardware_concurrency()});
  }

  const LayoutReport layout = measureLayoutAB(smoke);
  const SimdReport simd = measureSimdAB(smoke);

  std::ofstream out(path);
  out << std::setprecision(6) << std::fixed;
  out << "{\n"
      << "  \"benchmark\": \"rmcrt_kernel_thread_sweep\",\n"
      << "  \"problem\": \"burns_christon\",\n"
      << "  \"patch\": " << n << ",\n"
      << "  \"rays_per_cell\": " << rays << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << "    {\"threads\": " << s.threads << ", \"seconds\": "
        << s.seconds << ", \"mseg_per_s\": " << s.msegPerS
        << ", \"speedup_vs_serial\": " << s.speedup
        << ", \"bitwise_match\": " << (s.bitwise ? "true" : "false")
        << ", \"oversubscribed\": " << (s.oversubscribed ? "true" : "false")
        << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"layout\": {\"packed_mseg_per_s\": " << layout.packedMsegPerS
      << ", \"unpacked_mseg_per_s\": " << layout.unpackedMsegPerS
      << ", \"speedup\": " << layout.divqSpeedup << ", \"bitwise_match\": "
      << (layout.divqBitwise ? "true" : "false") << "},\n"
      << "  \"segment_microbench\": {\"packed_mseg_per_s\": "
      << layout.segPackedMsegPerS << ", \"unpacked_mseg_per_s\": "
      << layout.segUnpackedMsegPerS << ", \"speedup\": "
      << layout.segSpeedup << ", \"bitwise_match\": "
      << (layout.segBitwise ? "true" : "false") << "},\n"
      << "  \"simd_microbench\": {\"supported\": "
      << (simd.supported ? "true" : "false") << ", \"isa\": \"" << simd.isa
      << "\", \"grid_n\": " << simd.gridN << ", \"scalar_mseg_per_s\": "
      << simd.scalarMsegPerS << ", \"simd_mseg_per_s\": "
      << simd.simdMsegPerS << ", \"speedup\": " << simd.speedup
      << ", \"max_rel_err\": " << std::scientific << simd.maxRelErr
      << std::fixed << "}\n";
  out << "}\n";
  std::cout << "\nThread sweep baseline written to " << path << "\n";
  for (const Sample& s : samples)
    std::cout << "  threads=" << s.threads << "  " << std::setw(8)
              << s.seconds * 1e3 << " ms  speedup=" << std::setprecision(2)
              << s.speedup << std::setprecision(6)
              << (s.bitwise ? "" : "  [BITWISE MISMATCH]") << "\n";
  std::cout << "  layout A/B (1 thread): packed " << std::setprecision(2)
            << layout.packedMsegPerS << " Mseg/s vs unpacked "
            << layout.unpackedMsegPerS << " Mseg/s ("
            << layout.divqSpeedup << "x)"
            << (layout.divqBitwise ? "" : "  [BITWISE MISMATCH]") << "\n"
            << "  segment microbench: packed " << layout.segPackedMsegPerS
            << " Mseg/s vs unpacked " << layout.segUnpackedMsegPerS
            << " Mseg/s (" << layout.segSpeedup << "x)"
            << (layout.segBitwise ? "" : "  [BITWISE MISMATCH]") << "\n"
            << "  simd microbench: ";
  if (simd.supported)
    std::cout << simd.isa << " " << simd.simdMsegPerS << " Mseg/s vs scalar "
              << simd.scalarMsegPerS << " Mseg/s (" << simd.speedup
              << "x) at " << simd.gridN << "^3, max rel err "
              << std::scientific << simd.maxRelErr << std::fixed
              << std::setprecision(6) << "\n";
  else
    std::cout << "not supported on this host (scalar dispatch verified, "
              << std::setprecision(2) << simd.scalarMsegPerS
              << " Mseg/s)" << std::setprecision(6) << "\n";
}

/// Observability mode (--trace-out / --metrics-out): run one radiation
/// timestep of the distributed two-level GPU pipeline on 2 simulated
/// ranks with tracing enabled, so the emitted trace and metrics snapshot
/// cover every instrumented subsystem — scheduler task lifecycle, comm
/// channel, GPU staging/kernels, and the tracer's ray/segment counters.
void runObservabilityPipeline() {
  using runtime::Scheduler;

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  TraceRecorder::global().clear();

  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 8;
  setup.trace.seed = 42;
  setup.roiHalo = 3;

  const int numRanks = 2;
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::vector<std::unique_ptr<gpu::GpuDataWarehouse>> gdws;
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r) {
    gpu::GpuDevice::Config cfg;
    cfg.globalMemoryBytes = 256 << 20;
    devices.push_back(std::make_unique<gpu::GpuDevice>(cfg));
    gdws.push_back(std::make_unique<gpu::GpuDataWarehouse>(*devices.back()));
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      core::RmcrtComponent::registerTwoLevelGpuPipeline(*scheds[r], setup,
                                                        *gdws[r]);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  for (int r = 0; r < numRanks; ++r) {
    const std::string rank = "rank" + std::to_string(r) + ".";
    scheds[r]->exportMetrics(reg, "scheduler." + rank);
    gpu::exportMetrics(devices[r]->stats(), reg, "gpu." + rank);
  }
  mem::exportMetrics(mem::MmapArena::stats(), reg, "mem.arena.");
  reg.recordTimestep(0);
  std::cout << "observability pipeline: 2 ranks, 16^3/4^3 two-level GPU "
               "trace, 1 radiation timestep\n";
}

/// Adaptive regrid mode (--regrid-every=N [--regrid-threshold=X]): drive
/// Burns & Christon through the full AMR lifecycle — estimate, cluster,
/// migrate, rebalance, recompile — on 2 simulated ranks, and report the
/// fine-cell savings against the uniform fine level plus the measured
/// post-rebalance imbalance. The engine's gauges (rmcrt.amr.*,
/// rmcrt.lb.imbalance) land in the global registry, so --metrics-out
/// composes with this mode.
void runAdaptivePipeline(int regridEvery, double threshold) {
  using runtime::Scheduler;
  using runtime::SimulationController;

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();

  const int numRanks = 2;
  const int steps = 2 * regridEvery + 1;
  auto grid =
      grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                               IntVector(2), IntVector(8), IntVector(4));
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, numRanks);

  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 8;
  setup.trace.seed = 71;
  setup.roiHalo = 2;

  amr::AmrConfig cfg;
  cfg.regridEvery = regridEvery;
  cfg.estimator.refineThreshold = threshold;
  cfg.cluster.minPatchSize = 2;
  cfg.cluster.maxPatchSize = 4;
  auto engine = std::make_shared<amr::AmrEngine>(grid, lb, numRanks, cfg);
  engine->setPropertySampler(
      RmcrtComponent::makePropertySampler(setup.problem));
  engine->setMetrics(&reg);

  comm::Communicator world(numRanks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& sched = *scheds[r];
      // Per-rank coarse-record cache: re-registration each radiation
      // step repacks only regrid-migrated coverage, not the whole level.
      RmcrtSetup rankSetup = setup;
      rankSetup.packedCache = std::make_shared<PackedLevelCache>();
      SimulationController ctl(
          sched,
          [&, rankSetup](Scheduler& s) {
            RmcrtComponent::registerAdaptivePipeline(s, rankSetup,
                                                     &engine->costModel());
          },
          [&](Scheduler& s) {
            s.addTask(runtime::makeCarryForwardTask(
                {RmcrtLabels::divQ}, s.grid().numLevels() - 1));
          });
      ctl.setRegridHook(
          [&](int step) { return engine->maybeRegrid(step, sched); });
      if (r == 0) ctl.setMetrics(&reg, "sim.", /*ownsTimeline=*/true);
      ctl.run(steps);
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = engine->stats();
  const grid::Level& fine = engine->grid()->fineLevel();
  const double savings =
      1.0 - static_cast<double>(fine.coveredCells()) /
                static_cast<double>(fine.numCells());
  std::cout << "adaptive pipeline: " << numRanks << " ranks, " << steps
            << " steps, regrid every " << regridEvery << ", threshold "
            << threshold << "\n"
            << "  regrids=" << stats.regrids
            << " rebalances=" << stats.rebalances
            << " skipped=" << stats.rebalancesSkipped << "\n"
            << "  fine cells " << fine.coveredCells() << " / "
            << fine.numCells() << " uniform (" << std::fixed
            << std::setprecision(1) << savings * 100.0 << "% saved)\n"
            << "  measured imbalance " << std::setprecision(3)
            << stats.lastImbalance << "\n";
}

/// Snapshot-overhead mode (--snapshot-every=N): drive the 2-rank
/// Burns & Christon two-level pipeline through a run that checkpoints the
/// whole cluster every N completed steps (runtime/snapshot.h), and report
/// the cost of each checkpoint — MB written and ms spent under the
/// snapshot barrier — into BENCH_snapshot.json. The baseline run (same
/// steps, no snapshots) gives the wall-clock overhead fraction.
void runSnapshotBench(int snapshotEvery, const std::string& jsonPath) {
  using runtime::HarnessConfig;
  using runtime::HarnessResult;
  using runtime::WorldHarness;

  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(8), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;

  const int ranks = 2;
  const int steps = 4 * snapshotEvery + 1;  // several checkpoints
  const auto makeCfg = [&](int every) {
    HarnessConfig cfg;
    cfg.grid = grid;
    cfg.numRanks = ranks;
    cfg.steps = steps;
    cfg.radiationInterval = 1;
    cfg.registerRadiation = [setup](runtime::Scheduler& s) {
      RmcrtComponent::registerTwoLevelPipeline(s, setup);
    };
    const int fineLevel = grid->numLevels() - 1;
    cfg.registerCarryForward = [fineLevel](runtime::Scheduler& s) {
      s.addTask(runtime::makeCarryForwardTask({RmcrtLabels::divQ},
                                              fineLevel));
    };
    cfg.snapshotEvery = every;
    if (every > 0) cfg.snapshotDir = "/tmp/rmcrt_bench_snapshot";
    return cfg;
  };

  std::filesystem::remove_all("/tmp/rmcrt_bench_snapshot");

  Timer baseTimer;
  HarnessResult baseline;
  {
    WorldHarness h(makeCfg(0));
    baseline = h.run();
  }
  const double baseSeconds = baseTimer.seconds();

  Timer snapTimer;
  HarnessResult snap;
  {
    WorldHarness h(makeCfg(snapshotEvery));
    snap = h.run();
  }
  const double snapSeconds = snapTimer.seconds();
  std::filesystem::remove_all("/tmp/rmcrt_bench_snapshot");

  if (!baseline.completed || !snap.completed || snap.snapshots == 0) {
    std::cerr << "snapshot bench: run did not complete (baseline "
              << baseline.completed << ", snap " << snap.completed
              << ", checkpoints " << snap.snapshots << ")\n";
    std::exit(1);
  }

  const double mbPerCheckpoint = static_cast<double>(snap.snapshotBytes) /
                                 snap.snapshots / 1e6;
  const double msPerCheckpoint =
      snap.snapshotSeconds * 1e3 / snap.snapshots;
  const double overheadFraction =
      baseSeconds > 0.0 ? (snapSeconds - baseSeconds) / baseSeconds : 0.0;

  std::ofstream out(jsonPath);
  out << std::setprecision(6) << std::fixed;
  out << "{\n"
      << "  \"benchmark\": \"rmcrt_snapshot_overhead\",\n"
      << "  \"problem\": \"burns_christon\",\n"
      << "  \"ranks\": " << ranks << ",\n"
      << "  \"steps\": " << steps << ",\n"
      << "  \"snapshot_every\": " << snapshotEvery << ",\n"
      << "  \"checkpoints\": " << snap.snapshots << ",\n"
      << "  \"mb_per_checkpoint\": " << mbPerCheckpoint << ",\n"
      << "  \"ms_per_checkpoint\": " << msPerCheckpoint << ",\n"
      << "  \"run_seconds\": " << snapSeconds << ",\n"
      << "  \"baseline_seconds\": " << baseSeconds << ",\n"
      << "  \"overhead_fraction\": " << overheadFraction << "\n"
      << "}\n";

  std::cout << std::fixed;
  std::cout << "snapshot overhead: " << snap.snapshots
            << " checkpoints over " << steps << " steps (every "
            << snapshotEvery << ")\n"
            << "  " << std::setprecision(2) << mbPerCheckpoint
            << " MB/checkpoint, " << msPerCheckpoint
            << " ms/checkpoint\n"
            << "  run " << snapSeconds << " s vs baseline " << baseSeconds
            << " s (" << std::setprecision(1) << overheadFraction * 100.0
            << "% overhead)\n"
            << "  written to " << jsonPath << "\n";
}

/// Variance-adaptive sampling + spectral banding bench (--adaptive-rays):
/// solves the Burns & Christon golden fixture (41^3, 64 rays/cell,
/// seed 71 — the configuration the golden centerline test pins) with the
/// fixed fan and with the variance-adaptive budget controller, and
/// reports the segment reduction at measured accuracy plus the bitwise
/// neutrality gates the CI regression checker enforces:
///   - adaptiveRays=false with the knobs set is bitwise the fixed fan
///   - adaptiveRays=true with pilot == cap == nDivQRays is bitwise too
///     (the pilot is a prefix of the fixed fan, same RNG streams)
///   - a single {weight=1, kappaScale=1} spectral band is bitwise gray
/// The spectral section then runs the WSGG band model, fixed-fan and
/// adaptive, with per-band throughput from the tracer.band<k> gauges.
void runAdaptiveSamplingBench(bool smoke, const std::string& jsonPath,
                              int pilotRays, double errorTarget,
                              int bandCount) {
  const int n = 41;
  const int rays = 64;
  const int repeats = smoke ? 1 : 3;
  KernelFixture fx(n);
  const CellRange cells = fx.grid->fineLevel().cells();
  const WallProperties walls{0.0, 1.0};
  const auto makeLevel = [&] {
    return TraceLevel{LevelGeom::from(fx.grid->fineLevel()),
                      RadiationFieldsView{
                          FieldView<double>::fromHost(fx.abskg),
                          FieldView<double>::fromHost(fx.sig),
                          FieldView<grid::CellType>::fromHost(fx.ct)},
                      cells};
  };
  TraceConfig fixedCfg;
  fixedCfg.nDivQRays = rays;
  fixedCfg.seed = 71;

  struct Solve {
    std::vector<double> divQ;
    std::uint64_t segments = 0;
    double msegPerS = 0.0;
  };
  const auto collect = [&](const grid::CCVariable<double>& f) {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(cells.volume()));
    for (const auto& c : cells) out.push_back(f[c]);
    return out;
  };
  const auto solveGray = [&](const TraceConfig& cfg) {
    Tracer tracer({makeLevel()}, walls, cfg);
    grid::CCVariable<double> divQ(cells, 0.0);
    Solve s;
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      tracer.resetSegmentCount();
      Timer timer;
      tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(divQ));
      best = std::min(best, timer.seconds());
      s.segments = tracer.segmentCount();
    }
    s.msegPerS = static_cast<double>(s.segments) / best / 1e6;
    s.divQ = collect(divQ);
    return s;
  };
  const auto solveSpectral = [&](const TraceConfig& cfg,
                                 const BandModel& bands) {
    SpectralTracer tracer({makeLevel()}, walls, cfg, bands);
    grid::CCVariable<double> divQ(cells, 0.0);
    Solve s;
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      tracer.resetSegmentCount();
      Timer timer;
      tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(divQ));
      best = std::min(best, timer.seconds());
      s.segments = tracer.segmentCount();
    }
    s.msegPerS = static_cast<double>(s.segments) / best / 1e6;
    s.divQ = collect(divQ);
    return s;
  };
  const auto bitwise = [](const Solve& a, const Solve& b) {
    return a.divQ == b.divQ;
  };
  const auto centerline = [&](const Solve& s) {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    const int mid = n / 2;
    grid::CCVariable<double> f(cells, 0.0);
    std::size_t i = 0;
    for (const auto& c : cells) f[c] = s.divQ[i++];
    for (int x = 0; x < n; ++x)
      out.push_back(f[IntVector(x, mid, mid)]);
    return out;
  };

  // Fixed fan: the reference answer and the segment denominator.
  const Solve fixed = solveGray(fixedCfg);

  // Off-path neutrality: adaptive knobs set but adaptiveRays=false must
  // leave the fixed fan untouched (guards against knob leakage into the
  // always-on march, e.g. the kappaScale multiply).
  TraceConfig offCfg = fixedCfg;
  offCfg.adaptiveRays = false;
  offCfg.nPilotRays = 8;
  offCfg.errorTarget = 0.5;
  offCfg.nMaxRays = 32;
  const bool offIdentical = bitwise(solveGray(offCfg), fixed);

  // Saturated controller: pilot == cap == nDivQRays traces exactly the
  // fixed fan (pilot rays are a prefix of it, same counter-based RNG
  // streams, same left-to-right sum order).
  TraceConfig satCfg = fixedCfg;
  satCfg.adaptiveRays = true;
  satCfg.nPilotRays = rays;
  satCfg.nMaxRays = rays;
  const bool satIdentical = bitwise(solveGray(satCfg), fixed);

  // The calibrated operating point.
  TraceConfig adCfg = fixedCfg;
  adCfg.adaptiveRays = true;
  adCfg.nPilotRays = pilotRays;
  adCfg.errorTarget = errorTarget;
  adCfg.nMaxRays = 0;  // cap at nDivQRays
  const Solve adaptive = solveGray(adCfg);
  const double raysMean =
      MetricsRegistry::global().gauge("tracer.rays_per_cell_mean").value();
  const double raysMax =
      MetricsRegistry::global().gauge("tracer.rays_per_cell_max").value();
  const double reduction =
      static_cast<double>(fixed.segments) /
      static_cast<double>(std::max<std::uint64_t>(1, adaptive.segments));
  const double relL2 = relativeL2Error(adaptive.divQ, fixed.divQ);
  const double relL2Center =
      relativeL2Error(centerline(adaptive), centerline(fixed));

  // Spectral section: single gray band must be bitwise the gray solver;
  // the multi-band model runs fixed-fan and adaptive.
  const bool singleBandIdentical =
      bitwise(solveSpectral(fixedCfg, grayBand()), fixed);
  const BandModel bands = bandCount == 1 ? grayBand() : threeband();
  const Solve spectralFixed = solveSpectral(fixedCfg, bands);
  std::vector<double> bandRates;
  for (std::size_t b = 0; b < bands.size(); ++b)
    bandRates.push_back(MetricsRegistry::global()
                            .gauge("tracer.band" + std::to_string(b) +
                                   ".mseg_per_s")
                            .value());
  const Solve spectralAdaptive = solveSpectral(adCfg, bands);

  std::ofstream out(jsonPath);
  out << std::setprecision(6) << std::fixed;
  out << "{\n"
      << "  \"benchmark\": \"rmcrt_adaptive_sampling\",\n"
      << "  \"problem\": \"burns_christon\",\n"
      << "  \"grid_n\": " << n << ",\n"
      << "  \"rays_per_cell\": " << rays << ",\n"
      << "  \"seed\": " << fixedCfg.seed << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"adaptive\": {\n"
      << "    \"pilot_rays\": " << pilotRays << ",\n"
      << "    \"error_target\": " << errorTarget << ",\n"
      << "    \"max_rays\": " << rays << ",\n"
      << "    \"fixed_segments\": " << fixed.segments << ",\n"
      << "    \"adaptive_segments\": " << adaptive.segments << ",\n"
      << "    \"segment_reduction\": " << reduction << ",\n"
      << "    \"rel_l2_error\": " << std::scientific << relL2 << ",\n"
      << "    \"rel_l2_centerline\": " << relL2Center << std::fixed << ",\n"
      << "    \"rays_per_cell_mean\": " << raysMean << ",\n"
      << "    \"rays_per_cell_max\": " << raysMax << ",\n"
      << "    \"fixed_mseg_per_s\": " << fixed.msegPerS << ",\n"
      << "    \"adaptive_mseg_per_s\": " << adaptive.msegPerS << ",\n"
      << "    \"bitwise_off_identical\": "
      << (offIdentical ? "true" : "false") << ",\n"
      << "    \"bitwise_saturated_identical\": "
      << (satIdentical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"spectral\": {\n"
      << "    \"bands\": " << bands.size() << ",\n"
      << "    \"planck_mean_scale\": " << planckMeanScale(bands) << ",\n"
      << "    \"bitwise_single_band\": "
      << (singleBandIdentical ? "true" : "false") << ",\n"
      << "    \"gray_segments\": " << fixed.segments << ",\n"
      << "    \"band_segments\": " << spectralFixed.segments << ",\n"
      << "    \"adaptive_band_segments\": " << spectralAdaptive.segments
      << ",\n"
      << "    \"band_mseg_per_s\": [";
  for (std::size_t b = 0; b < bandRates.size(); ++b)
    out << (b ? ", " : "") << bandRates[b];
  out << "]\n"
      << "  }\n"
      << "}\n";

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "adaptive sampling bench (" << n << "^3, " << rays
            << " rays/cell, seed " << fixedCfg.seed << ")\n"
            << "  fixed " << fixed.segments << " segments, adaptive "
            << adaptive.segments << " (" << reduction << "x reduction)\n"
            << "  rel L2 " << std::scientific << relL2 << " (centerline "
            << relL2Center << ")" << std::fixed << ", rays/cell mean "
            << raysMean << " max " << raysMax << "\n"
            << "  bitwise: off=" << (offIdentical ? "ok" : "MISMATCH")
            << " saturated=" << (satIdentical ? "ok" : "MISMATCH")
            << " single-band=" << (singleBandIdentical ? "ok" : "MISMATCH")
            << "\n"
            << "  spectral " << bands.size() << "-band: fixed "
            << spectralFixed.segments << " segments, adaptive "
            << spectralAdaptive.segments << "\n"
            << "  written to " << jsonPath << "\n";
}

void printCalibrationTable() {
  using namespace rmcrt::sim;
  std::cout << "\n=== Kernel throughput per patch size (model calibration "
               "inputs; paper Section V patch sweep) ===\n\n";
  std::cout << std::setw(12) << "patch" << std::setw(18) << "host Mseg/s"
            << std::setw(22) << "modeled K20X Mseg/s\n";
  for (int ps : {16, 32, 64}) {
    const double seg = measureKernelSegmentsPerSecond(ps, 2);
    std::cout << std::setw(9) << ps << "^3" << std::setw(18) << std::fixed
              << std::setprecision(2) << seg / 1e6 << std::setw(20)
              << seg * 12.0 / 1e6 << "\n";
  }
  std::cout << "\n(The multi-level trace cost per cell grows with patch "
               "size — longer in-ROI paths — while GPU occupancy improves; "
               "the machine model composes both.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Our flags, consumed before google-benchmark sees the command line:
  //   --smoke        quick thread sweep + JSON only (CI smoke mode)
  //   --packed / --unpacked  kernel data layout for the google-benchmark
  //       suite (the JSON baseline always measures both; default packed)
  //   --json=<path>  baseline output path (default BENCH_rmcrt_kernel.json)
  //   --trace-out/--metrics-out  observability outputs (runs a dedicated
  //       mini distributed pipeline instead of the benchmark suite)
  //   --regrid-every=N       run the adaptive AMR pipeline (regrid cadence)
  //   --regrid-threshold=X   refinement-flag threshold for that mode
  //   --snapshot-every=N     measure whole-cluster checkpoint overhead
  //       (MB and ms per checkpoint) into BENCH_snapshot.json
  //   --adaptive-rays[=N]    variance-adaptive sampling + spectral banding
  //       bench into BENCH_adaptive.json (N = pilot rays, default 16)
  //   --error-target=X       adaptive relative-error target (default 0.015)
  //   --bands=K              spectral section band count (1 = gray band,
  //       anything else = the 3-band WSGG model)
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  bool smoke = false;
  std::string jsonPath = "BENCH_rmcrt_kernel.json";
  bool jsonPathSet = false;
  int regridEvery = 0;
  double regridThreshold = 0.10;
  int snapshotEvery = 0;
  int adaptivePilot = 0;  // >0 runs the adaptive sampling bench
  double errorTarget = 0.015;
  int bandCount = 3;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--packed") == 0) {
      g_packedLayout = true;
    } else if (std::strcmp(argv[i], "--unpacked") == 0) {
      g_packedLayout = false;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
      jsonPathSet = true;
    } else if (std::strncmp(argv[i], "--regrid-every=", 15) == 0) {
      regridEvery = std::atoi(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--regrid-threshold=", 19) == 0) {
      regridThreshold = std::atof(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--snapshot-every=", 17) == 0) {
      snapshotEvery = std::atoi(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--adaptive-rays=", 16) == 0) {
      adaptivePilot = std::atoi(argv[i] + 16);
    } else if (std::strcmp(argv[i], "--adaptive-rays") == 0) {
      adaptivePilot = 16;
    } else if (std::strncmp(argv[i], "--error-target=", 15) == 0) {
      errorTarget = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--bands=", 8) == 0) {
      bandCount = std::atoi(argv[i] + 8);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;

  if (adaptivePilot > 0) {
    runAdaptiveSamplingBench(smoke,
                             jsonPathSet ? jsonPath : "BENCH_adaptive.json",
                             adaptivePilot, errorTarget, bandCount);
    return 0;
  }
  if (snapshotEvery > 0) {
    // Own output file so a combined CI invocation never clobbers the
    // kernel-sweep baseline.
    runSnapshotBench(snapshotEvery,
                     jsonPathSet ? jsonPath : "BENCH_snapshot.json");
    return 0;
  }
  if (regridEvery > 0) {
    if (obs.any()) rmcrt::TraceRecorder::global().setEnabled(true);
    runAdaptivePipeline(regridEvery, regridThreshold);
    if (obs.any()) rmcrt::writeObservabilityOutputs(obs);
    return 0;
  }
  if (obs.any()) {
    rmcrt::TraceRecorder::global().setEnabled(true);
    runObservabilityPipeline();
    rmcrt::writeObservabilityOutputs(obs);
    return 0;
  }
  if (smoke) {
    writeThreadSweepJson(jsonPath, /*smoke=*/true);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeThreadSweepJson(jsonPath, /*smoke=*/false);
  printCalibrationTable();
  return 0;
}
