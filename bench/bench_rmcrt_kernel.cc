/// \file bench_rmcrt_kernel.cc
/// The RMCRT kernel itself (paper Sections III/V setup): marching
/// throughput versus patch size (the 16^3/32^3/64^3 sweep that drives
/// the scaling figures), versus ray count, single- versus multi-level,
/// and the DOM baseline for contrast (the solver RMCRT replaces inside
/// ARCHES). Ends with the measured segments/s per patch size — the
/// calibration inputs of the performance model.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "core/dom_solver.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "sim/calibration.h"

namespace {

using namespace rmcrt;
using namespace rmcrt::core;

struct KernelFixture {
  std::shared_ptr<grid::Grid> grid;
  grid::CCVariable<double> abskg, sig;
  grid::CCVariable<grid::CellType> ct;

  explicit KernelFixture(int n)
      : grid(grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                         IntVector(n), IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), grid::CellType::Flow) {
    initializeProperties(grid->fineLevel(), burnsChriston(), abskg, sig, ct);
  }

  Tracer tracer(int rays) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<grid::CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    TraceConfig cfg;
    cfg.nDivQRays = rays;
    return Tracer({tl}, WallProperties{0.0, 1.0}, cfg);
  }
};

void BM_TraceSingleLevel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rays = static_cast<int>(state.range(1));
  KernelFixture fx(n);
  Tracer tracer = fx.tracer(rays);
  grid::CCVariable<double> divQ(fx.grid->fineLevel().cells(), 0.0);
  for (auto _ : state) {
    tracer.computeDivQ(fx.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ));
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.grid->fineLevel().numCells() * rays);
  state.counters["Mseg/s"] = benchmark::Counter(
      static_cast<double>(tracer.segmentCount()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSingleLevel)
    ->Args({16, 4})
    ->Args({16, 16})
    ->Args({16, 64})
    ->Args({32, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DomSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int order = static_cast<int>(state.range(1));
  KernelFixture fx(n);
  DomSolver solver(
      LevelGeom::from(fx.grid->fineLevel()),
      RadiationFieldsView{FieldView<double>::fromHost(fx.abskg),
                          FieldView<double>::fromHost(fx.sig),
                          FieldView<grid::CellType>::fromHost(fx.ct)},
      WallProperties{0.0, 1.0}, order);
  grid::CCVariable<double> divQ(fx.grid->fineLevel().cells(), 0.0);
  for (auto _ : state) {
    solver.computeDivQ(fx.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ));
    benchmark::DoNotOptimize(divQ.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          fx.grid->fineLevel().numCells());
}
BENCHMARK(BM_DomSolve)->Args({16, 2})->Args({16, 4})->Args({32, 4})
    ->Unit(benchmark::kMillisecond);

void BM_BoundaryFlux(benchmark::State& state) {
  KernelFixture fx(16);
  Tracer tracer = fx.tracer(4);
  for (auto _ : state) {
    const double q =
        tracer.boundaryFlux(IntVector(0, 8, 8), IntVector(-1, 0, 0), 100);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BoundaryFlux);

void printCalibrationTable() {
  using namespace rmcrt::sim;
  std::cout << "\n=== Kernel throughput per patch size (model calibration "
               "inputs; paper Section V patch sweep) ===\n\n";
  std::cout << std::setw(12) << "patch" << std::setw(18) << "host Mseg/s"
            << std::setw(22) << "modeled K20X Mseg/s\n";
  for (int ps : {16, 32, 64}) {
    const double seg = measureKernelSegmentsPerSecond(ps, 2);
    std::cout << std::setw(9) << ps << "^3" << std::setw(18) << std::fixed
              << std::setprecision(2) << seg / 1e6 << std::setw(20)
              << seg * 12.0 / 1e6 << "\n";
  }
  std::cout << "\n(The multi-level trace cost per cell grows with patch "
               "size — longer in-ROI paths — while GPU occupancy improves; "
               "the machine model composes both.)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printCalibrationTable();
  return 0;
}
