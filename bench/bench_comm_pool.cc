/// \file bench_comm_pool.cc
/// Regenerates paper Table I / Figure 1: local communication time before
/// (mutex-protected vector + Testsome pattern) and after (wait-free pool,
/// Algorithm 1) the infrastructure improvements.
///
/// Two parts:
///  1. google-benchmark microbenchmarks of the REAL containers driving
///     the REAL simulated-MPI layer under 1..8 polling threads — the
///     measured per-message costs;
///  2. the Table I reproduction: the measured costs calibrate the machine
///     model, which is evaluated at the paper's configuration (LARGE
///     2-level problem, 136.31M cells, 262k patches) from 512 to 16,384
///     nodes. Both the Titan-default and host-calibrated tables print.

#include <benchmark/benchmark.h>

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "comm/communicator.h"
#include "comm/locked_queue.h"
#include "comm/request_pool.h"
#include "sim/calibration.h"
#include "sim/scaling_study.h"

namespace {

using namespace rmcrt;

/// Drive `messages` receive records through a container with `threads`
/// pollers while a sender thread completes them.
template <typename Container>
void driveContainer(Container& container, int threads, int messages) {
  comm::Communicator world(2);
  std::vector<std::unique_ptr<int[]>> bufs;
  bufs.reserve(static_cast<std::size_t>(messages));
  std::atomic<int> done{0};
  for (int i = 0; i < messages; ++i) {
    bufs.push_back(std::make_unique<int[]>(1));
    comm::Request r = world.irecv(1, 0, i, bufs.back().get(), sizeof(int));
    container.add(comm::CommNode(
        std::move(r), [&done](const comm::Request&) { done.fetch_add(1); }));
  }
  std::thread sender([&] {
    for (int i = 0; i < messages; ++i) world.isend(0, 1, i, &i, sizeof i);
  });
  std::vector<std::thread> pollers;
  for (int t = 0; t < threads; ++t) {
    pollers.emplace_back([&] {
      while (done.load(std::memory_order_relaxed) < messages)
        container.processReady();
    });
  }
  sender.join();
  for (auto& t : pollers) t.join();
}

void BM_WaitFreePool(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int messages = 4000;
  for (auto _ : state) {
    comm::WaitFreeRequestPool pool;
    driveContainer(pool, threads, messages);
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_WaitFreePool)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LockedVectorSerialized(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int messages = 4000;
  for (auto _ : state) {
    comm::LockedRequestQueue queue(
        comm::LockedRequestQueue::Mode::Serialized);
    driveContainer(queue, threads, messages);
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_LockedVectorSerialized)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PoolAddOnly(benchmark::State& state) {
  comm::Communicator world(2);
  for (auto _ : state) {
    state.PauseTiming();
    comm::WaitFreeRequestPool pool;
    std::vector<std::unique_ptr<int[]>> bufs;
    std::vector<comm::Request> reqs;
    for (int i = 0; i < 1000; ++i) {
      bufs.push_back(std::make_unique<int[]>(1));
      reqs.push_back(world.irecv(1, 0, i, bufs.back().get(), sizeof(int)));
    }
    state.ResumeTiming();
    for (auto& r : reqs) pool.add(comm::CommNode(std::move(r), nullptr));
    state.PauseTiming();
    for (int i = 0; i < 1000; ++i) world.isend(0, 1, i, &i, sizeof i);
    pool.processReady();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PoolAddOnly);

void printTableOne() {
  using namespace rmcrt::sim;
  std::cout << "\n=== Paper Table I / Figure 1 reproduction ===\n\n";
  std::cout << "[model with Titan-default container costs]\n";
  printCommStudy(std::cout, commImprovementStudy(titan()));

  std::cout << "\n[model calibrated from the containers measured on THIS "
               "host]\n";
  Calibration c;
  measureContainerCosts(c.waitFreePerMessage, c.lockedPerMessage,
                        /*threads=*/4, /*messages=*/20000);
  std::cout << "  measured per-message: wait-free " << c.waitFreePerMessage * 1e6
            << " us, locked " << c.lockedPerMessage * 1e6 << " us\n";
  printCommStudy(std::cout, commImprovementStudy(calibrate(titan(), c)));
  std::cout << "\nPaper reference (Table I): before 6.25 -> 0.73 s, after "
               "1.42 -> 0.23 s, speedups 4.40/2.27/2.33/2.47/2.63/3.17\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTableOne();
  return 0;
}
