/// \file bench_service.cc
/// Radiation-as-a-service load generator (DESIGN.md §16): N tenant
/// threads flood one registered scene with a mixed divQ / boundary-flux /
/// radiometer query stream, once against the batched service (cross-
/// request tile coalescing, one shared coarse upload per generation) and
/// once against the naive one-solve-per-request baseline (same pool,
/// same queries — every request re-packs its own records and stages its
/// own coarse copy). Emits BENCH_service.json with queries/s and the
/// streaming p50/p99 latency for both modes plus a bitwise accuracy
/// verdict (every response compared element-wise across modes), gated in
/// CI by tools/check_bench_regression.py --mode service.
///
///   --smoke        small scene + short stream (CI smoke / soak mode)
///   --json=<path>  output path (default BENCH_service.json)
///   --chaos        run an additional fault-injected soak against the
///                  batched service: lossy submit transport, tight
///                  admission caps, concurrent property updates — then
///                  assert the submitted == completed + rejected
///                  reconciliation invariant (exit 1 on violation)
///   --tenants=N / --queries=N  override the stream shape

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault_injector.h"
#include "core/problems.h"
#include "grid/grid.h"
#include "service/service.h"
#include "util/timers.h"

namespace {

using namespace rmcrt;
using namespace rmcrt::service;

struct LoadShape {
  int fineEdge = 32;
  int nRays = 8;
  int tenants = 8;
  int queriesPerTenant = 24;
  int fluxRays = 16;
  int radiometerRays = 32;
};

std::shared_ptr<const grid::Grid> makeScene(int fineEdge) {
  return grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                  IntVector(fineEdge), IntVector(4),
                                  IntVector(std::min(8, fineEdge)),
                                  IntVector(std::min(4, fineEdge / 4)));
}

core::RmcrtSetup makeSetup(int nRays) {
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = nRays;
  setup.trace.seed = 71;
  setup.roiHalo = 4;
  return setup;
}

/// Deterministic query mix for tenant t, sequence j. Every response is
/// stored at slot t*Q+j so the two modes compare element-wise no matter
/// what order the service drained them in.
struct QueryPlan {
  enum class Kind { DivQ, Flux, Radiometer };
  Kind kind = Kind::DivQ;
  CellRange cells;                                      // DivQ
  std::vector<std::pair<IntVector, IntVector>> faces;   // Flux
  core::RadiometerSpec spec;                            // Radiometer
};

QueryPlan planQuery(const grid::Grid& grid, const LoadShape& shape, int t,
                    int j) {
  const CellRange fine = grid.fineLevel().cells();
  const IntVector lo = fine.low();
  const IntVector hi = fine.high();
  const int edge = hi.x() - lo.x();
  QueryPlan q;
  // Probe-heavy mix — a service's bread-and-butter stream is sensor
  // reads (radiometer cones, wall-flux probes) punctuated by field
  // queries (divQ slabs). Small per-request trace work against a large
  // shared scene is exactly the regime cross-request batching exists
  // for: the naive baseline re-packs the whole scene per probe.
  const int phase = j % 8;
  if (phase == 0 || phase == 4) {
    // Thin x-slab of divQ marching across the domain.
    const int w = 1;
    const int x0 = lo.x() + (t + j * 3) % (edge - w + 1);
    q.cells = CellRange(IntVector(x0, lo.y(), lo.z()),
                        IntVector(x0 + w, hi.y(), hi.z()));
  } else if (phase == 2 || phase == 6) {
    q.kind = QueryPlan::Kind::Flux;
    // Four cells along the y=0 wall, stepping with (t, j) so tenants
    // probe different footprints.
    for (int k = 0; k < 4; ++k) {
      const int x = lo.x() + (t * 3 + j + k * 5) % edge;
      const int z = lo.z() + (t * 7 + j * 2 + k) % edge;
      q.faces.emplace_back(IntVector(x, lo.y(), z), IntVector(0, -1, 0));
    }
  } else {
    q.kind = QueryPlan::Kind::Radiometer;
    q.spec.position = Vector(0.2 + 0.07 * (t % 8), 0.35, 0.3 + 0.05 * (j % 9));
    q.spec.viewDirection = Vector(0.0, 0.0, 1.0);
    q.spec.halfAngleRadians = 0.2;
    q.spec.nRays = shape.radiometerRays;
  }
  return q;
}

struct ModeRun {
  double wallSeconds = 0.0;
  ServiceStats stats;
  /// One slot per (tenant, sequence): divQ vector, flux vector, or the
  /// single radiometer mean — whichever the plan asked for.
  std::vector<std::vector<double>> responses;
  bool allOk = true;
};

ModeRun runMode(const grid::Grid& grid, std::shared_ptr<const grid::Grid> gp,
                const core::RmcrtSetup& setup, const LoadShape& shape,
                bool batching) {
  ServiceConfig cfg;
  cfg.workers = std::max(2u, std::thread::hardware_concurrency() / 2);
  cfg.batching = batching;
  cfg.admission.maxQueueDepth = 1 << 14;  // baseline runs shed-free
  cfg.admission.maxPerTenant = 1 << 12;
  Service svc(cfg);
  const SceneHandle h = svc.registerScene(gp, setup);

  const int T = shape.tenants, Q = shape.queriesPerTenant;
  ModeRun run;
  run.responses.assign(static_cast<std::size_t>(T) * Q, {});

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(T);
  for (int t = 0; t < T; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      // Pipelined client: every query in flight before the first drain,
      // the open-loop pattern a real service front-end produces and the
      // regime cross-request coalescing exists for. Both modes see the
      // identical stream.
      std::vector<std::future<Outcome<DivQResult>>> divq(Q);
      std::vector<std::future<Outcome<FluxResult>>> flux(Q);
      std::vector<std::future<Outcome<RadiometerResult>>> radio(Q);
      std::vector<QueryPlan::Kind> kinds(Q);
      for (int j = 0; j < Q; ++j) {
        const QueryPlan plan = planQuery(grid, shape, t, j);
        kinds[j] = plan.kind;
        switch (plan.kind) {
          case QueryPlan::Kind::DivQ:
            divq[j] = svc.submitDivQ({tenant, h.id, 0, plan.cells});
            break;
          case QueryPlan::Kind::Flux:
            flux[j] = svc.submitBoundaryFlux(
                {tenant, h.id, 0, plan.faces, shape.fluxRays});
            break;
          case QueryPlan::Kind::Radiometer:
            radio[j] = svc.submitRadiometer({tenant, h.id, 0, plan.spec});
            break;
        }
      }
      for (int j = 0; j < Q; ++j) {
        std::vector<double>& slot =
            run.responses[static_cast<std::size_t>(t) * Q + j];
        switch (kinds[j]) {
          case QueryPlan::Kind::DivQ: {
            auto out = divq[j].get();
            if (!out.ok()) { run.allOk = false; break; }
            slot = std::move(out.value.divQ);
            break;
          }
          case QueryPlan::Kind::Flux: {
            auto out = flux[j].get();
            if (!out.ok()) { run.allOk = false; break; }
            slot = std::move(out.value.fluxes);
            break;
          }
          case QueryPlan::Kind::Radiometer: {
            auto out = radio[j].get();
            if (!out.ok()) { run.allOk = false; break; }
            slot = {out.value.reading.meanIntensity,
                    out.value.reading.flux};
            break;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  run.wallSeconds = wall.seconds();
  run.stats = svc.stats();
  svc.shutdown();
  return run;
}

bool bitwiseMatch(const ModeRun& a, const ModeRun& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    if (a.responses[i].size() != b.responses[i].size()) return false;
    for (std::size_t k = 0; k < a.responses[i].size(); ++k)
      if (a.responses[i][k] != b.responses[i][k]) return false;
  }
  return true;
}

double qps(const ModeRun& r) {
  return r.wallSeconds > 0.0
             ? static_cast<double>(r.stats.completed) / r.wallSeconds
             : 0.0;
}

/// Fault-injected soak: lossy transport + tight admission + concurrent
/// property updates. Correctness bar is the reconciliation invariant,
/// not throughput. Returns false on violation.
bool runChaos(const grid::Grid& grid, std::shared_ptr<const grid::Grid> gp,
              const core::RmcrtSetup& setup, const LoadShape& shape,
              std::ostream& json) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.batching = true;
  cfg.admission.maxQueueDepth = 12;
  cfg.admission.maxPerTenant = 3;
  cfg.injector = std::make_shared<comm::FaultInjector>(0xC4A05u);
  comm::FaultProbabilities p;
  p.drop = 0.2;
  p.delay = 0.15;
  p.duplicate = 0.1;
  p.reorder = 0.1;
  cfg.injector->setDefaultProbabilities(p);
  Service svc(cfg);
  const SceneHandle h = svc.registerScene(gp, setup);

  std::vector<std::thread> clients;
  for (int t = 0; t < shape.tenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      // Bursts of 6 against a per-tenant cap of 3: admission must shed
      // part of every wave with typed rejections while the rest completes.
      for (int j = 0; j < shape.queriesPerTenant; j += 6) {
        std::vector<std::future<Outcome<DivQResult>>> wave;
        for (int k = j; k < std::min(j + 6, shape.queriesPerTenant); ++k) {
          const QueryPlan plan = planQuery(grid, shape, t, k);
          // generation 0 = latest: queries stay valid across the
          // updater's generation bumps; sheds come back as typed
          // rejections.
          if (plan.kind == QueryPlan::Kind::Flux)
            svc.submitBoundaryFlux({tenant, h.id, 0, plan.faces,
                                    shape.fluxRays}).get();
          else if (plan.kind == QueryPlan::Kind::Radiometer)
            svc.submitRadiometer({tenant, h.id, 0, plan.spec}).get();
          else
            wave.push_back(svc.submitDivQ({tenant, h.id, 0, plan.cells}));
        }
        for (auto& f : wave) f.get();
      }
    });
  }
  // Concurrent scene churn: two property swaps while the stream runs.
  std::thread updater([&] {
    for (int i = 0; i < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      svc.updateProperties(h.id, core::uniformMedium(1.0 + i, 900.0 + 50 * i));
    }
  });
  for (auto& c : clients) c.join();
  updater.join();

  const ServiceStats st = svc.stats();
  svc.shutdown();
  const bool reconciled =
      st.submitted == st.completed + st.rejected &&
      st.admission.admitted == st.admission.released &&
      st.admission.inFlight == 0;
  json << ",\n  \"chaos\": {\n"
       << "    \"submitted\": " << st.submitted << ",\n"
       << "    \"completed\": " << st.completed << ",\n"
       << "    \"rejected\": " << st.rejected << ",\n"
       << "    \"generation_evictions\": " << st.generationEvictions << ",\n"
       << "    \"faults_retransmitted\": " << st.faultsRetransmitted << ",\n"
       << "    \"faults_delayed\": " << st.faultsDelayed << ",\n"
       << "    \"faults_deduplicated\": " << st.faultsDeduplicated << ",\n"
       << "    \"faults_reordered\": " << st.faultsReordered << ",\n"
       << "    \"reconciled\": " << (reconciled ? "true" : "false") << "\n"
       << "  }";
  std::cout << "chaos soak: " << st.submitted << " submitted = "
            << st.completed << " completed + " << st.rejected
            << " rejected; evictions " << st.generationEvictions
            << ", faults (retx/delay/dedup/reorder) "
            << st.faultsRetransmitted << "/" << st.faultsDelayed << "/"
            << st.faultsDeduplicated << "/" << st.faultsReordered
            << (reconciled ? " — reconciled\n" : " — RECONCILIATION FAILED\n");
  return reconciled;
}

void writeModeJson(std::ostream& out, const char* name, const ModeRun& r) {
  out << "  \"" << name << "\": {\n"
      << "    \"queries_per_s\": " << qps(r) << ",\n"
      << "    \"p50_ms\": " << r.stats.p50Ms << ",\n"
      << "    \"p99_ms\": " << r.stats.p99Ms << ",\n"
      << "    \"wall_seconds\": " << r.wallSeconds << ",\n"
      << "    \"submitted\": " << r.stats.submitted << ",\n"
      << "    \"completed\": " << r.stats.completed << ",\n"
      << "    \"rejected\": " << r.stats.rejected << ",\n"
      << "    \"coarse_uploads\": " << r.stats.coarseUploads << ",\n"
      << "    \"batches\": " << r.stats.batches << ",\n"
      << "    \"tile_jobs\": " << r.stats.tileJobs << ",\n"
      << "    \"slo_breaches\": " << r.stats.sloBreaches << "\n"
      << "  }";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool chaos = false;
  std::string jsonPath = "BENCH_service.json";
  LoadShape shape;
  bool tenantsSet = false, queriesSet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    else if (std::strncmp(argv[i], "--json=", 7) == 0) jsonPath = argv[i] + 7;
    else if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      shape.tenants = std::atoi(argv[i] + 10);
      tenantsSet = true;
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      shape.queriesPerTenant = std::atoi(argv[i] + 10);
      queriesSet = true;
    }
  }
  if (smoke) {
    shape.fineEdge = 32;
    shape.nRays = 4;
    if (!tenantsSet) shape.tenants = 8;
    if (!queriesSet) shape.queriesPerTenant = 12;
    shape.fluxRays = 8;
    shape.radiometerRays = 16;
  }

  auto gp = makeScene(shape.fineEdge);
  const core::RmcrtSetup setup = makeSetup(shape.nRays);

  std::cout << "service load: " << shape.tenants << " tenants x "
            << shape.queriesPerTenant << " queries, fine "
            << shape.fineEdge << "^3, " << shape.nRays << " rays/cell\n";

  const ModeRun batched = runMode(*gp, gp, setup, shape, /*batching=*/true);
  const ModeRun naive = runMode(*gp, gp, setup, shape, /*batching=*/false);

  const bool match = bitwiseMatch(batched, naive) && batched.allOk &&
                     naive.allOk;
  const double speedup = qps(naive) > 0.0 ? qps(batched) / qps(naive) : 0.0;

  std::cout << std::fixed << std::setprecision(2)
            << "  batched:     " << qps(batched) << " q/s, p50 "
            << batched.stats.p50Ms << " ms, p99 " << batched.stats.p99Ms
            << " ms, " << batched.stats.coarseUploads << " coarse upload(s), "
            << batched.stats.batches << " batches / "
            << batched.stats.tileJobs << " tile jobs\n"
            << "  per-request: " << qps(naive) << " q/s, p50 "
            << naive.stats.p50Ms << " ms, p99 " << naive.stats.p99Ms
            << " ms, " << naive.stats.coarseUploads << " coarse upload(s)\n"
            << "  speedup " << speedup << "x, bitwise "
            << (match ? "MATCH" : "MISMATCH") << "\n";

  std::ofstream out(jsonPath);
  out << std::setprecision(6) << std::fixed;
  out << "{\n"
      << "  \"benchmark\": \"rmcrt_service\",\n"
      << "  \"problem\": \"burns_christon\",\n"
      << "  \"fine_edge\": " << shape.fineEdge << ",\n"
      << "  \"tenants\": " << shape.tenants << ",\n"
      << "  \"queries_per_tenant\": " << shape.queriesPerTenant << ",\n"
      << "  \"rays_per_query\": " << shape.nRays << ",\n"
      << "  \"bitwise_match\": " << (match ? "true" : "false") << ",\n"
      << "  \"speedup\": " << speedup << ",\n";
  writeModeJson(out, "batched", batched);
  out << ",\n";
  writeModeJson(out, "per_request", naive);

  bool chaosOk = true;
  if (chaos) chaosOk = runChaos(*gp, gp, setup, shape, out);
  out << "\n}\n";
  out.close();
  std::cout << "  written to " << jsonPath << "\n";

  if (!match) {
    std::cerr << "bench_service: batched responses are not bitwise "
                 "identical to the per-request baseline\n";
    return 1;
  }
  if (!chaosOk) {
    std::cerr << "bench_service: chaos soak failed reconciliation\n";
    return 1;
  }
  return 0;
}
