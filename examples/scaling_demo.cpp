/// \file scaling_demo.cpp
/// Regenerates all three of the paper's evaluation artifacts in one run,
/// using the machine model calibrated against THIS host's measured RMCRT
/// kernel and request containers: Figure 2 (MEDIUM strong scaling),
/// Figure 3 (LARGE strong scaling, with the Eq. 3 efficiency headlines)
/// and Table I / Figure 1 (local communication before/after).
///
///   ./examples/scaling_demo [--no-calibration]

#include <cstring>
#include <iomanip>
#include <iostream>

#include "sim/calibration.h"
#include "sim/csv_export.h"
#include "sim/scaling_study.h"
#include "util/observability_cli.h"

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  using namespace rmcrt::sim;

  MachineModel m = titan();
  const bool calibrateHost =
      !(argc > 1 && std::strcmp(argv[1], "--no-calibration") == 0);
  if (calibrateHost) {
    std::cout << "calibrating from this host (real kernel + containers)..."
              << std::flush;
    const Calibration c = measureHost();
    std::cout << " kernel " << std::fixed << std::setprecision(2)
              << c.hostSegmentsPerSecond / 1e6 << " Mseg/s, wait-free "
              << c.waitFreePerMessage * 1e6 << " us/msg, locked "
              << c.lockedPerMessage * 1e6 << " us/msg\n\n";
    m = calibrate(m, c);
  }

  mediumStudy().print(std::cout, m);
  std::cout << "\n";
  largeStudy().print(std::cout, m);
  std::cout << "\nEq. 3 parallel efficiency, LARGE, 16^3 patches:\n"
            << "  eff(4096 -> 8192)  = " << std::setprecision(1)
            << largeProblemEfficiency(m, 16, 4096, 8192) * 100
            << "%   (paper: 96%)\n"
            << "  eff(4096 -> 16384) = "
            << largeProblemEfficiency(m, 16, 4096, 16384) * 100
            << "%   (paper: 89%)\n\n";
  printCommStudy(std::cout, commImprovementStudy(m));

  // Plot-ready CSVs alongside the text tables.
  if (writeScalingCsv("fig2_medium.csv", mediumStudy(), m) &&
      writeScalingCsv("fig3_large.csv", largeStudy(), m) &&
      writeCommStudyCsv("table1_comm.csv", commImprovementStudy(m))) {
    std::cout << "\nwrote fig2_medium.csv, fig3_large.csv, "
                 "table1_comm.csv\n";
  }
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
