/// \file boiler.cpp
/// The paper's motivating application shape: a boiler-like radiation
/// solve (hot flame core, absorbing medium, emissive walls) run through
/// the FULL distributed pipeline — multiple ranks (threads) over the
/// simulated MPI layer, the 2-level AMR mesh, and the simulated-GPU
/// trace task with the shared level database. Reports the quantity the
/// CCMSC cares about: radiative heat flux to the walls.
///
///   ./examples/boiler [ranks=4] [fineCells=32] [rays=32]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/radiometer.h"
#include "core/rmcrt_component.h"
#include "core/spectral.h"
#include "grid/load_balancer.h"
#include "grid/regridder.h"
#include "grid/vtk_writer.h"
#include "runtime/scheduler.h"
#include "util/observability_cli.h"

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  using namespace rmcrt;
  using namespace rmcrt::core;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 32;
  const int rays = argc > 3 ? std::atoi(argv[3]) : 32;

  std::cout << "Synthetic boiler radiation solve: " << n << "^3 fine / "
            << n / 4 << "^3 coarse, " << ranks
            << " ranks, GPU trace task, " << rays << " rays/cell\n\n";

  auto grid =
      grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(n),
                               IntVector(4), IntVector(n / 4),
                               IntVector(std::max(1, n / 8)));
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, ranks,
                                                 grid::LbStrategy::Morton);
  comm::Communicator world(ranks);

  RmcrtSetup setup;
  setup.problem = syntheticBoiler();
  setup.trace.nDivQRays = rays;
  setup.trace.seed = 11;
  setup.roiHalo = 4;

  // One simulated K20X per rank (1 GPU per node, as on Titan).
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::vector<std::unique_ptr<gpu::GpuDataWarehouse>> gdws;
  std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r) {
    devices.push_back(std::make_unique<gpu::GpuDevice>());
    gdws.push_back(std::make_unique<gpu::GpuDataWarehouse>(*devices.back()));
    scheds.push_back(
        std::make_unique<runtime::Scheduler>(grid, lb, world, r));
  }

  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      RmcrtComponent::registerTwoLevelGpuPipeline(*scheds[r], setup,
                                                  *gdws[r]);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  // Aggregate divQ statistics over the whole fine level.
  double minQ = 1e300, maxQ = -1e300, sum = 0.0;
  std::int64_t cells = 0;
  for (int r = 0; r < ranks; ++r) {
    for (int pid :
         lb->patchesOf(r, *grid, grid->numLevels() - 1)) {
      const auto& divQ =
          scheds[r]->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid->patchById(pid)->cells()) {
        minQ = std::min(minQ, divQ[c]);
        maxQ = std::max(maxQ, divQ[c]);
        sum += divQ[c];
        ++cells;
      }
    }
  }
  std::cout << "divQ over " << cells << " cells: min " << std::fixed
            << std::setprecision(1) << minQ / 1000 << " kW/m^3, max "
            << maxQ / 1000 << " kW/m^3, mean " << sum / cells / 1000
            << " kW/m^3\n"
            << "(positive = net emitter: the flame core; negative = net "
               "absorber: cool gas heated by the core)\n\n";

  // Wall heat flux along the midline of the -x wall (serial tracer over
  // the same fields; the CCMSC quantity of interest).
  grid::CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<grid::CellType> ct(grid->fineLevel().cells(),
                                      grid::CellType::Flow);
  initializeProperties(grid->fineLevel(), setup.problem, abskg, sig, ct);
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{
                    FieldView<double>::fromHost(abskg),
                    FieldView<double>::fromHost(sig),
                    FieldView<grid::CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  Tracer tracer({tl},
                WallProperties{setup.problem.wallSigmaT4OverPi,
                               setup.problem.wallEmissivity},
                setup.trace);
  std::cout << "incident radiative flux on the -x wall (z midplane):\n"
            << std::setw(8) << "y" << std::setw(16) << "q_in [kW/m^2]\n";
  for (int y = 0; y < n; y += std::max(1, n / 8)) {
    const double q =
        tracer.boundaryFlux(IntVector(0, y, n / 2), IntVector(-1, 0, 0), 200);
    std::cout << std::setw(8) << std::fixed << std::setprecision(3)
              << (y + 0.5) / n << std::setw(14) << std::setprecision(1)
              << q / 1000 << "\n";
  }

  // Gather divQ into a level image and dump it (plus the inputs) as
  // legacy VTK for ParaView/VisIt.
  {
    std::vector<grid::CCVariable<double>> patchVars;
    for (const grid::Patch& p : grid->fineLevel().patches()) {
      const int owner = lb->rankOf(p.id());
      grid::CCVariable<double> v(p, 0);
      const auto& src =
          scheds[owner]->newDW().get<double>(RmcrtLabels::divQ, p.id());
      v.copyRegion(src, p.cells());
      patchVars.push_back(std::move(v));
    }
    const grid::CCVariable<double> divQImage =
        grid::gatherFromPatches(patchVars, grid->fineLevel());
    if (grid::writeVtkLevel("boiler_divQ.vtk", grid->fineLevel(),
                            {{"divQ", &divQImage}})) {
      std::cout << "wrote boiler_divQ.vtk (load in ParaView/VisIt)\n\n";
    }
  }

  // A virtual radiometer mounted in the -x wall aimed at the flame core
  // (the instrument model used in the CCMSC validation campaigns).
  RadiometerSpec rad;
  rad.position = Vector(0.05, 0.5, 0.4);
  rad.viewDirection = Vector(1.0, 0.0, 0.0);
  rad.halfAngleRadians = 0.3;
  rad.nRays = 400;
  const RadiometerReading reading = evaluateRadiometer(tracer, rad);
  std::cout << "\nvirtual radiometer at (0.05, 0.5, 0.4) aimed +x: mean "
               "intensity "
            << std::setprecision(1) << reading.meanIntensity / 1000
            << " kW/m^2/sr over " << std::setprecision(3)
            << reading.solidAngle << " sr -> flux "
            << std::setprecision(1) << reading.flux / 1000 << " kW/m^2\n";

  // Spectral (3-band WSGG) divQ at the flame core versus gray — the
  // paper's future-work extension in action.
  SpectralTracer spectral({tl},
                          WallProperties{setup.problem.wallSigmaT4OverPi,
                                         setup.problem.wallEmissivity},
                          setup.trace, threeband());
  const IntVector core(n / 2, n / 2, 2 * n / 5);
  grid::CCVariable<double> sdivQ(CellRange(core, core + IntVector(1)), 0.0);
  spectral.computeDivQ(sdivQ.window(),
                       MutableFieldView<double>::fromHost(sdivQ));
  const double grayI = tracer.meanIncomingIntensity(core);
  const double grayQ = 4.0 * M_PI * abskg[core] * (sig[core] - grayI);
  std::cout << "flame-core divQ: gray " << std::setprecision(1)
            << grayQ / 1000 << " kW/m^3 vs 3-band spectral "
            << sdivQ[core] / 1000 << " kW/m^3\n";

  // Runtime/GPU accounting: the level database held ONE coarse copy.
  std::cout << "\nper-rank accounting:\n";
  for (int r = 0; r < ranks; ++r) {
    const auto& st = scheds[r]->stats();
    const auto ds = devices[r]->stats();
    std::cout << "  rank " << r << ": " << st.tasksExecuted << " tasks, "
              << st.messagesSent << " msgs sent, "
              << st.bytesReceived / 1024 << " KiB recvd | GPU: "
              << ds.kernelsLaunched << " kernels, H2D "
              << ds.h2dBytes / 1024 << " KiB, D2H " << ds.d2hBytes / 1024
              << " KiB, level-DB copies " << gdws[r]->numLevelVarCopies()
              << "\n";
  }
  if (obs.any()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    for (int r = 0; r < ranks; ++r) {
      const std::string pfx = "rank" + std::to_string(r) + ".";
      scheds[r]->exportMetrics(reg, "scheduler." + pfx);
      gpu::exportMetrics(devices[r]->stats(), reg, "gpu." + pfx);
    }
    reg.recordTimestep(0);
  }
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
