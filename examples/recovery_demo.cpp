/// \file recovery_demo.cpp
/// Rank-loss recovery end to end: a 3-rank Burns & Christon run that
/// checkpoints the whole cluster every 2 steps, loses rank 1 at step 3,
/// and finishes anyway — the surviving ranks restore the last snapshot
/// and the dead rank's patches are re-partitioned onto them through the
/// cost-weighted load balancer (runtime/snapshot.h, DESIGN.md §13).
///
///   ./examples/recovery_demo [ranks=3] [steps=8] [killStep=3]
///       [--trace-out <path>] [--metrics-out <path>]
///
/// The observability flags (util/observability_cli.h) capture the run:
/// --trace-out writes a Chrome trace-event JSON of the schedule around
/// the rank loss (open in Perfetto to watch the restore), --metrics-out
/// dumps the MetricsRegistry snapshot (JSON, or CSV for a .csv path).

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <string>

#include "comm/fault_injector.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/snapshot.h"
#include "util/observability_cli.h"

int main(int argc, char** argv) {
  using namespace rmcrt;
  using runtime::HarnessConfig;
  using runtime::HarnessResult;
  using runtime::WorldHarness;

  // Consumes --trace-out/--metrics-out before the positional parse.
  const ObservabilityOptions obs = parseObservabilityFlags(argc, argv);
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 8;
  const int killStep = argc > 3 ? std::atoi(argv[3]) : 3;
  const std::string snapDir = "/tmp/rmcrt_recovery_demo";
  std::filesystem::remove_all(snapDir);

  std::cout << "Rank-loss recovery demo: " << ranks
            << " ranks, " << steps << " steps, snapshot every 2, "
            << "kill rank 1 at step " << killStep << "\n\n";

  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(8), IntVector(4));
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;

  HarnessConfig cfg;
  cfg.grid = grid;
  cfg.numRanks = ranks;
  cfg.steps = steps;
  cfg.radiationInterval = 1;
  cfg.registerRadiation = [setup](runtime::Scheduler& s) {
    core::RmcrtComponent::registerTwoLevelPipeline(s, setup);
  };
  const int fineLevel = grid->numLevels() - 1;
  cfg.registerCarryForward = [fineLevel](runtime::Scheduler& s) {
    s.addTask(runtime::makeCarryForwardTask({core::RmcrtLabels::divQ},
                                            fineLevel));
  };
  cfg.snapshotDir = snapDir;
  cfg.snapshotEvery = 2;
  cfg.killRank = 1;
  cfg.killAtStep = killStep;
  cfg.injector = std::make_shared<comm::FaultInjector>();
  // Fail-fast resilience knobs so the dead rank is classified in
  // seconds, not after production backoff budgets.
  cfg.sched.channel.baseBackoffMs = 2.0;
  cfg.sched.channel.maxBackoffMs = 20.0;
  cfg.sched.channel.progressIntervalMs = 0.5;
  cfg.sched.channel.maxRetries = 6;
  cfg.sched.watchdogDeadlineSeconds = 0.4;
  cfg.sched.watchdogMaxStrikes = 2;
  cfg.collectiveTimeoutSeconds = 5.0;

  WorldHarness harness(std::move(cfg));
  const HarnessResult result = harness.run();
  std::filesystem::remove_all(snapDir);

  std::cout << "run " << (result.completed ? "COMPLETED" : "FAILED")
            << ": " << result.recoveries << " recovery, "
            << ranks << " -> " << result.finalRanks << " ranks\n"
            << "  " << result.snapshots << " snapshots, last at step "
            << result.lastSnapshotStep << " ("
            << std::fixed << std::setprecision(2)
            << static_cast<double>(result.snapshotBytes) / 1e6
            << " MB total, "
            << result.snapshotSeconds * 1e3 << " ms total)\n";

  // Survivor ownership after the elastic restore: every fine patch lands
  // on exactly one live rank.
  std::cout << "  post-recovery partition (finest level):\n";
  for (int r = 0; r < harness.numRanks(); ++r) {
    const auto pids = harness.loadBalancer().patchesOf(
        r, harness.grid(), harness.grid().numLevels() - 1);
    std::cout << "    rank " << r << ": " << pids.size() << " patches\n";
  }
  if (obs.any()) writeObservabilityOutputs(obs);
  return result.completed ? 0 : 1;
}
