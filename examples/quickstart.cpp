/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build a grid, define the Burns
/// & Christon benchmark, run the RMCRT solver, and print the centerline
/// divergence of the heat flux next to the S4 discrete-ordinates
/// baseline.
///
///   ./examples/quickstart [cellsPerSide=24] [raysPerCell=64]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/dom_solver.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "util/observability_cli.h"

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  using namespace rmcrt;
  using namespace rmcrt::core;

  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int rays = argc > 2 ? std::atoi(argv[2]) : 64;

  std::cout << "RMCRT quickstart: Burns & Christon benchmark, " << n << "^3 "
            << "cells, " << rays << " rays/cell\n\n";

  // 1. A single-level grid over the unit cube.
  auto grid = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                          IntVector(n), IntVector(n));

  // 2. The benchmark problem and trace parameters.
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = rays;
  setup.trace.seed = 2016;

  // 3. Solve divQ with reverse Monte Carlo ray tracing.
  grid::CCVariable<double> divQ =
      RmcrtComponent::solveSerialSingleLevel(*grid, setup);

  // 4. The DOM baseline for comparison (paper Section II/III context).
  grid::CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<grid::CellType> ct(grid->fineLevel().cells(),
                                      grid::CellType::Flow);
  initializeProperties(grid->fineLevel(), setup.problem, abskg, sig, ct);
  DomSolver dom(LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{
                    FieldView<double>::fromHost(abskg),
                    FieldView<double>::fromHost(sig),
                    FieldView<grid::CellType>::fromHost(ct)},
                WallProperties{0.0, 1.0}, 4);
  grid::CCVariable<double> domQ(grid->fineLevel().cells(), 0.0);
  dom.computeDivQ(grid->fineLevel().cells(),
                  MutableFieldView<double>::fromHost(domQ));

  // 5. Print the centerline (the benchmark's standard cut).
  std::cout << std::setw(8) << "x" << std::setw(14) << "divQ RMCRT"
            << std::setw(14) << "divQ S4 DOM" << "\n";
  const int mid = n / 2;
  for (int x = 0; x < n; ++x) {
    const IntVector c(x, mid, mid);
    const double xc = (x + 0.5) / n;
    std::cout << std::setw(8) << std::fixed << std::setprecision(3) << xc
              << std::setw(14) << std::setprecision(4) << divQ[c]
              << std::setw(14) << domQ[c] << "\n";
  }

  std::cout << "\nExpected: divQ > 0 everywhere (cold walls drain the hot "
               "medium), peaking at the domain center where the Burns & "
               "Christon absorption coefficient (hence emission) peaks, "
               "with RMCRT and DOM tracking each other within a few "
               "percent plus Monte Carlo noise.\n";
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
