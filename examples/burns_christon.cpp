/// \file burns_christon.cpp
/// Accuracy study on the Burns & Christon benchmark (the paper's
/// validation problem, refs [30]/[3]): Monte Carlo convergence of the
/// single-level tracer, and the multi-level (AMR) tracer's deviation as
/// a function of the region-of-interest halo — the accuracy/communication
/// tradeoff at the heart of the paper's scheme.
///
///   ./examples/burns_christon [cellsPerSide=16]

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "util/observability_cli.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  using namespace rmcrt;
  using namespace rmcrt::core;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  std::cout << "Burns & Christon accuracy study, " << n << "^3 fine mesh\n";

  auto grid1 = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                           IntVector(n), IntVector(n));

  // --- Part 1: Monte Carlo convergence (error ~ 1/sqrt(rays)). --------
  RmcrtSetup truth;
  truth.problem = burnsChriston();
  truth.trace.nDivQRays = 8192;
  truth.trace.seed = 1;
  std::cout << "\n[1] computing 8192-ray reference..." << std::flush;
  grid::CCVariable<double> ref =
      RmcrtComponent::solveSerialSingleLevel(*grid1, truth);
  std::cout << " done\n\n";

  std::cout << std::setw(10) << "rays" << std::setw(16) << "rel L2 error"
            << std::setw(18) << "err*sqrt(rays)\n";
  for (int rays : {25, 50, 100, 200, 400, 800}) {
    RmcrtSetup s = truth;
    s.trace.nDivQRays = rays;
    s.trace.seed = 77;  // independent of the reference stream
    grid::CCVariable<double> q =
        RmcrtComponent::solveSerialSingleLevel(*grid1, s);
    std::vector<double> a, b;
    for (const auto& c : q.window()) {
      a.push_back(q[c]);
      b.push_back(ref[c]);
    }
    const double err = relativeL2Error(a, b);
    std::cout << std::setw(10) << rays << std::setw(16) << std::scientific
              << std::setprecision(3) << err << std::setw(16) << std::fixed
              << std::setprecision(4) << err * std::sqrt(double(rays))
              << "\n";
  }
  std::cout << "(constant err*sqrt(rays) = the expected Monte Carlo "
               "convergence reported in Hunsaker et al. [3])\n";

  // --- Part 2: multi-level deviation vs ROI halo. ----------------------
  std::cout << "\n[2] 2-level tracer (RR 4) deviation from single-level, "
               "100 rays:\n\n";
  RmcrtSetup base;
  base.problem = burnsChriston();
  base.trace.nDivQRays = 100;
  base.trace.seed = 5;
  grid::CCVariable<double> one =
      RmcrtComponent::solveSerialSingleLevel(*grid1, base);

  std::cout << std::setw(10) << "ROI halo" << std::setw(20)
            << "rel L2 vs 1-level" << "\n";
  for (int halo : {1, 2, 4, 8, n}) {
    auto grid2 = grid::Grid::makeTwoLevel(
        Vector(0.0), Vector(1.0), IntVector(n), IntVector(4),
        IntVector(std::max(4, n / 4)), IntVector(std::max(1, n / 8)));
    RmcrtSetup s = base;
    s.roiHalo = halo;
    grid::CCVariable<double> two =
        RmcrtComponent::solveSerialTwoLevel(*grid2, s);
    std::vector<double> a, b;
    for (const auto& c : two.window()) {
      a.push_back(two[c]);
      b.push_back(one[c]);
    }
    std::cout << std::setw(10) << halo << std::setw(16) << std::scientific
              << std::setprecision(3) << relativeL2Error(a, b) << "\n";
  }
  std::cout << "(deviation -> 0 as the ROI covers the level: the coarse "
               "continuation is the only approximation the AMR scheme "
               "introduces)\n";
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
