/// \file burns_christon.cpp
/// Accuracy study on the Burns & Christon benchmark (the paper's
/// validation problem, refs [30]/[3]): Monte Carlo convergence of the
/// single-level tracer, and the multi-level (AMR) tracer's deviation as
/// a function of the region-of-interest halo — the accuracy/communication
/// tradeoff at the heart of the paper's scheme.
///
/// Part 3 drives the adaptive regridding engine on 8 simulated ranks:
/// the error estimator flags the tent-profile gradients, the clusterer
/// boxes them into fine patches, and the measured-cost balancer
/// partitions the result — printing fine-cell savings and the
/// rmcrt.lb.imbalance gauge.
///
///   ./examples/burns_christon [cellsPerSide=16]
///       [--regrid-every=N] [--regrid-threshold=X]

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "amr/amr_engine.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/simulation_controller.h"
#include "util/metrics.h"
#include "util/observability_cli.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const rmcrt::ObservabilityOptions obs =
      rmcrt::parseObservabilityFlags(argc, argv);
  using namespace rmcrt;
  using namespace rmcrt::core;

  int regridEvery = 2;
  double regridThreshold = 0.10;
  int n = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--regrid-every=", 15) == 0)
      regridEvery = std::atoi(argv[i] + 15);
    else if (std::strncmp(argv[i], "--regrid-threshold=", 19) == 0)
      regridThreshold = std::atof(argv[i] + 19);
    else if (argv[i][0] != '-')
      n = std::atoi(argv[i]);
  }
  std::cout << "Burns & Christon accuracy study, " << n << "^3 fine mesh\n";

  auto grid1 = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                           IntVector(n), IntVector(n));

  // --- Part 1: Monte Carlo convergence (error ~ 1/sqrt(rays)). --------
  RmcrtSetup truth;
  truth.problem = burnsChriston();
  truth.trace.nDivQRays = 8192;
  truth.trace.seed = 1;
  std::cout << "\n[1] computing 8192-ray reference..." << std::flush;
  grid::CCVariable<double> ref =
      RmcrtComponent::solveSerialSingleLevel(*grid1, truth);
  std::cout << " done\n\n";

  std::cout << std::setw(10) << "rays" << std::setw(16) << "rel L2 error"
            << std::setw(18) << "err*sqrt(rays)\n";
  for (int rays : {25, 50, 100, 200, 400, 800}) {
    RmcrtSetup s = truth;
    s.trace.nDivQRays = rays;
    s.trace.seed = 77;  // independent of the reference stream
    grid::CCVariable<double> q =
        RmcrtComponent::solveSerialSingleLevel(*grid1, s);
    std::vector<double> a, b;
    for (const auto& c : q.window()) {
      a.push_back(q[c]);
      b.push_back(ref[c]);
    }
    const double err = relativeL2Error(a, b);
    std::cout << std::setw(10) << rays << std::setw(16) << std::scientific
              << std::setprecision(3) << err << std::setw(16) << std::fixed
              << std::setprecision(4) << err * std::sqrt(double(rays))
              << "\n";
  }
  std::cout << "(constant err*sqrt(rays) = the expected Monte Carlo "
               "convergence reported in Hunsaker et al. [3])\n";

  // --- Part 2: multi-level deviation vs ROI halo. ----------------------
  std::cout << "\n[2] 2-level tracer (RR 4) deviation from single-level, "
               "100 rays:\n\n";
  RmcrtSetup base;
  base.problem = burnsChriston();
  base.trace.nDivQRays = 100;
  base.trace.seed = 5;
  grid::CCVariable<double> one =
      RmcrtComponent::solveSerialSingleLevel(*grid1, base);

  std::cout << std::setw(10) << "ROI halo" << std::setw(20)
            << "rel L2 vs 1-level" << "\n";
  for (int halo : {1, 2, 4, 8, n}) {
    auto grid2 = grid::Grid::makeTwoLevel(
        Vector(0.0), Vector(1.0), IntVector(n), IntVector(4),
        IntVector(std::max(4, n / 4)), IntVector(std::max(1, n / 8)));
    RmcrtSetup s = base;
    s.roiHalo = halo;
    grid::CCVariable<double> two =
        RmcrtComponent::solveSerialTwoLevel(*grid2, s);
    std::vector<double> a, b;
    for (const auto& c : two.window()) {
      a.push_back(two[c]);
      b.push_back(one[c]);
    }
    std::cout << std::setw(10) << halo << std::setw(16) << std::scientific
              << std::setprecision(3) << relativeL2Error(a, b) << "\n";
  }
  std::cout << "(deviation -> 0 as the ROI covers the level: the coarse "
               "continuation is the only approximation the AMR scheme "
               "introduces)\n";

  // --- Part 3: adaptive regridding on 8 simulated ranks. ---------------
  if (regridEvery > 0) {
    using runtime::Scheduler;
    using runtime::SimulationController;
    std::cout << "\n[3] adaptive regrid (every " << regridEvery
              << " steps, threshold " << std::fixed << std::setprecision(2)
              << regridThreshold << ") on 8 simulated ranks:\n\n";

    const int numRanks = 8;
    const int steps = 2 * regridEvery + 1;
    MetricsRegistry reg;
    auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                         IntVector(2 * n), IntVector(2),
                                         IntVector(n / 2), IntVector(n / 4));
    auto lb = std::make_shared<grid::LoadBalancer>(*grid, numRanks);

    RmcrtSetup setup;
    setup.problem = burnsChriston();
    setup.trace.nDivQRays = 8;
    setup.trace.seed = 71;
    setup.roiHalo = 2;

    amr::AmrConfig cfg;
    cfg.regridEvery = regridEvery;
    cfg.estimator.refineThreshold = regridThreshold;
    cfg.cluster.minPatchSize = 2;
    cfg.cluster.maxPatchSize = 2;
    auto engine = std::make_shared<amr::AmrEngine>(grid, lb, numRanks, cfg);
    engine->setPropertySampler(
        RmcrtComponent::makePropertySampler(setup.problem));
    engine->setMetrics(&reg);

    comm::Communicator world(numRanks);
    std::vector<std::unique_ptr<Scheduler>> scheds;
    for (int r = 0; r < numRanks; ++r)
      scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
    std::vector<std::thread> threads;
    for (int r = 0; r < numRanks; ++r) {
      threads.emplace_back([&, r] {
        Scheduler& sched = *scheds[r];
        // Per-rank coarse-record cache: each radiation step's
        // re-registration repacks only regrid-migrated coverage.
        RmcrtSetup rankSetup = setup;
        rankSetup.packedCache = std::make_shared<PackedLevelCache>();
        SimulationController ctl(
            sched,
            [&, rankSetup](Scheduler& s) {
              RmcrtComponent::registerAdaptivePipeline(
                  s, rankSetup, &engine->costModel());
            },
            [&](Scheduler& s) {
              s.addTask(runtime::makeCarryForwardTask(
                  {RmcrtLabels::divQ}, s.grid().numLevels() - 1));
            });
        ctl.setRegridHook(
            [&](int step) { return engine->maybeRegrid(step, sched); });
        ctl.run(steps);
      });
    }
    for (auto& t : threads) t.join();

    const auto stats = engine->stats();
    const grid::Level& fine = engine->grid()->fineLevel();
    const double saved = 1.0 - static_cast<double>(fine.coveredCells()) /
                                   static_cast<double>(fine.numCells());
    double gauge = 0.0;
    if (const auto* e = reg.snapshot().find("rmcrt.lb.imbalance"))
      gauge = e->value;
    std::cout << std::fixed << std::setprecision(1) << "  regrids="
              << stats.regrids << " rebalances=" << stats.rebalances
              << " skipped=" << stats.rebalancesSkipped << "\n"
              << "  fine cells " << fine.coveredCells() << " / "
              << fine.numCells() << " uniform (" << saved * 100.0
              << "% saved)\n"
              << std::setprecision(3) << "  rmcrt.lb.imbalance gauge "
              << gauge << " (measured " << stats.lastImbalance << ")\n"
              << "(refinement follows the tent-profile gradients; the "
                 "balancer packs the surviving patches by measured segment "
                 "cost)\n";
  }
  rmcrt::writeObservabilityOutputs(obs);
  return 0;
}
